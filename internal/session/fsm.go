// Package session implements stateful time-travel debug sessions over
// the repair machinery: a session owns a live machine plus its memoized
// golden trace, and exposes step/run/inspect/rewind verbs a remote
// debugger drives one at a time. The headline verb is rewind — restore
// the architectural state of any live checkpoint through the scheme's
// own repair paths (machine.Rewind), or re-materialize a boundary under
// a different machine configuration (machine.NewAt) to ask "what would
// this region have done under another scheme?".
//
// Sessions run a strict server-side lifecycle FSM:
//
//	created ──▶ running ◀──▶ paused ──▶ closed
//	   │                        ▲          ▲
//	   └────────────────────────┴──────────┘ (close from any state)
//
// Verbs hold the session for their whole duration (one verb at a time;
// concurrent verbs fail fast with ErrBusy), and every state change goes
// through the transition table so illegal requests surface as typed
// *TransitionError values rather than corrupting the machine.
package session

import (
	"errors"
	"fmt"
)

// State is a session lifecycle state.
type State string

const (
	// StateCreated: machine built, nothing executed yet.
	StateCreated State = "created"
	// StateRunning: a step/run verb is advancing the machine.
	StateRunning State = "running"
	// StatePaused: between verbs; the machine holds its state.
	StatePaused State = "paused"
	// StateClosed: terminal; the machine is released.
	StateClosed State = "closed"
)

// transitions is the legal-move table of the lifecycle FSM.
var transitions = map[State]map[State]bool{
	StateCreated: {StateRunning: true, StateClosed: true},
	StateRunning: {StatePaused: true, StateClosed: true},
	StatePaused:  {StateRunning: true, StateClosed: true},
	StateClosed:  {},
}

// TransitionError reports an illegal lifecycle transition.
type TransitionError struct {
	From, To State
}

func (e *TransitionError) Error() string {
	return fmt.Sprintf("session: illegal transition %s -> %s", e.From, e.To)
}

// Sentinel errors, matchable with errors.Is.
var (
	// ErrBusy: another verb currently holds the session (HTTP 409).
	ErrBusy = errors.New("session busy: another verb is in flight")
	// ErrClosed: the session has been closed (HTTP 410).
	ErrClosed = errors.New("session closed")
)

// to performs a state transition, or returns a *TransitionError.
// Callers hold s.mu.
func (s *Session) to(next State) error {
	if !transitions[s.state][next] {
		if s.state == StateClosed {
			return ErrClosed
		}
		return &TransitionError{From: s.state, To: next}
	}
	s.state = next
	return nil
}
