// Command ckptasm assembles, disassembles, and inspects programs for
// the simulator ISA.
//
// Usage:
//
//	ckptasm prog.s             # assemble, print listing and stats
//	ckptasm -run prog.s        # assemble and execute on the reference interpreter
//	ckptasm -encode prog.s     # assemble and dump the binary word stream
//	ckptasm -kernel fib        # disassemble a built-in kernel
//	ckptasm -rv32 prog.bin     # rv32 translation listing (corpus name, flat binary, or ELF)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/buildinfo"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/refsim"
	"repro/internal/rv32"
	"repro/internal/workload"
)

func main() {
	runIt := flag.Bool("run", false, "execute on the reference interpreter")
	encode := flag.Bool("encode", false, "dump the binary encoding")
	kernel := flag.String("kernel", "", "operate on a built-in kernel instead of a file")
	rv32Mode := flag.Bool("rv32", false, "print the rv32 translation listing for a compiled image (corpus name or file)")
	version := buildinfo.Flag()
	flag.Parse()
	version()

	if *rv32Mode {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "ckptasm: -rv32 wants one argument: a corpus name or an image file")
			os.Exit(1)
		}
		if err := rv32Listing(flag.Arg(0)); err != nil {
			fmt.Fprintln(os.Stderr, "ckptasm:", err)
			os.Exit(1)
		}
		return
	}

	var p *prog.Program
	var err error
	switch {
	case *kernel != "":
		var k workload.Kernel
		if k, err = workload.ByName(*kernel); err == nil {
			p = k.Load()
		}
	case flag.NArg() == 1:
		var src []byte
		if src, err = os.ReadFile(flag.Arg(0)); err == nil {
			p, err = asm.Assemble(flag.Arg(0), string(src))
		}
	default:
		err = fmt.Errorf("usage: ckptasm [-run|-encode] (prog.s | -kernel name)")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckptasm:", err)
		os.Exit(1)
	}

	switch {
	case *encode:
		words := isa.EncodeProgram(p.Code)
		for i, w := range words {
			fmt.Printf("%04x: %08x\n", i, w)
		}
		fmt.Printf("; %d instructions, %d words\n", len(p.Code), len(words))
	case *runIt:
		res, err := refsim.Run(p, refsim.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ckptasm:", err)
			os.Exit(1)
		}
		fmt.Printf("halted=%v retired=%d branches=%d (%.1f%% taken)\n",
			res.Halted, res.Retired, res.Branches, pct(res.Taken, res.Branches))
		for _, e := range res.Exceptions {
			fmt.Printf("exception: %v\n", e)
		}
		for r := 1; r < isa.NumRegs; r++ {
			if res.Regs[r] != 0 {
				fmt.Printf("r%-2d = %d (%#x)\n", r, int32(res.Regs[r]), res.Regs[r])
			}
		}
	default:
		fmt.Print(asm.Disassemble(p))
		st := p.StaticStats()
		fmt.Printf("; %d instructions, %d branches (b=%.1f), %d loads, %d stores\n",
			st.Insts, st.Branches, st.BranchEvery, st.Loads, st.Stores)
	}
}

// rv32Listing prints the side-by-side rv32 → internal-ISA translation
// for an embedded corpus binary (by name) or an image file on disk.
func rv32Listing(arg string) error {
	name, data := arg, []byte(nil)
	if b, err := rv32.CorpusBytes(arg); err == nil {
		data = b
	} else if b, ferr := os.ReadFile(arg); ferr == nil {
		data = b
	} else {
		return fmt.Errorf("%q is neither a corpus binary (%v) nor a readable file (%v)", arg, err, ferr)
	}
	img, err := rv32.Load(name, data)
	if err != nil {
		return err
	}
	listing, err := rv32.Listing(img)
	if err != nil {
		return err
	}
	fmt.Print(listing)
	return nil
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
