// Exceptions: the §3 E-repair walkthrough. A program that demand-pages
// memory (page faults), overflows (traps), divides by zero (faults) and
// issues a software trap runs on a schemeE machine with a live event
// trace, showing each repair-to-checkpoint followed by single-step
// precise handling — Theorem 1 in action.
//
//	go run ./examples/exceptions
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/refsim"
)

const source = `
; touch three unmapped pages, then raise each exception kind once
    addi r1, r0, 0x8000
    addi r2, r0, 0
    addi r3, r0, 3
pages:
    sw   r2, 0(r1)         ; page fault on first touch (demand paging)
    lw   r4, 0(r1)
    add  r2, r4, r2
    lui  r5, 1
    add  r1, r1, r5        ; next page (+0x10000)
    addi r3, r3, -1
    bne  r3, r0, pages

    lui  r6, 0x7fff
    ori  r6, r6, 0xffff
    addiv r7, r6, 1        ; overflow trap: completes (wraps), then traps

    addi r8, r0, 0
    div  r9, r6, r8        ; divide fault: skipped, r9 keeps its value

    trap 99                ; software trap
    sw   r2, result(r0)
    halt
.data 0x1000
result: .word 0
`

func main() {
	p, err := asm.Assemble("exceptions", source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("running with schemeE(2, distance 6): repair events below")
	fmt.Println("--------------------------------------------------------")
	cfg := machine.Config{
		// Pure E-repair scheme: no branch speculation, so the branches
		// stall the front end but every exception repairs precisely.
		Scheme:    core.NewSchemeE(2, 6, 0),
		Speculate: false,
		MemSystem: machine.MemBackward3b,
		Trace:     func(f string, a ...any) { fmt.Printf("  "+f+"\n", a...) },
	}
	res, err := machine.Run(p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--------------------------------------------------------")
	fmt.Printf("exceptions handled precisely, in architectural order:\n")
	for i, e := range res.Exceptions {
		fmt.Printf("  %d: %v\n", i+1, e)
	}
	fmt.Printf("\nE-repairs: %d   precise-mode instructions: %d   cycles: %d\n",
		res.Stats.ERepairs, res.Stats.PreciseInsts, res.Stats.Cycles)

	ref := refsim.MustRun(p, refsim.Options{})
	if err := res.MatchRef(ref); err != nil {
		log.Fatalf("golden mismatch: %v", err)
	}
	fmt.Println("golden check: state and exception sequence match sequential execution")
}
