package sem

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func negu(v int32) uint32 { return uint32(-v) }

func eval(op isa.Op, a, b uint32) Outcome {
	return EvalALU(isa.Inst{Op: op, Rd: 1, Rs1: 2, Rs2: 3}, a, b, 100)
}

func evalImm(op isa.Op, a uint32, imm int32) Outcome {
	return EvalALU(isa.Inst{Op: op, Rd: 1, Rs1: 2, Imm: imm}, a, 0, 100)
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b uint32
		want uint32
	}{
		{isa.OpADD, 2, 3, 5},
		{isa.OpADD, 0xFFFFFFFF, 1, 0},
		{isa.OpSUB, 2, 3, 0xFFFFFFFF},
		{isa.OpMUL, 7, 6, 42},
		{isa.OpMUL, 0x10000, 0x10000, 0}, // low 32 bits
		{isa.OpDIV, 100, 7, 14},
		{isa.OpDIV, negu(100), 7, negu(14)},
		{isa.OpREM, 100, 7, 2},
		{isa.OpREM, negu(100), 7, negu(2)},
		{isa.OpAND, 0b1100, 0b1010, 0b1000},
		{isa.OpOR, 0b1100, 0b1010, 0b1110},
		{isa.OpXOR, 0b1100, 0b1010, 0b0110},
		{isa.OpNOR, 0, 0, 0xFFFFFFFF},
		{isa.OpSLL, 1, 4, 16},
		{isa.OpSLL, 1, 36, 16}, // shift mod 32
		{isa.OpSRL, 0x80000000, 31, 1},
		{isa.OpSRA, 0x80000000, 31, 0xFFFFFFFF},
		{isa.OpSLT, ^uint32(0), 0, 1},
		{isa.OpSLT, 0, ^uint32(0), 0},
		{isa.OpSLTU, ^uint32(0), 0, 0},
		{isa.OpSLTU, 0, ^uint32(0), 1},
	}
	for _, c := range cases {
		o := eval(c.op, c.a, c.b)
		if !o.WroteRd || o.Result != c.want || o.Exc != isa.ExcCodeNone {
			t.Errorf("%v(%#x,%#x) = %#x exc=%v, want %#x", c.op, c.a, c.b, o.Result, o.Exc, c.want)
		}
	}
}

func TestOverflowTraps(t *testing.T) {
	// Trap semantics: the wrapped result is written AND the trap raised.
	o := eval(isa.OpADDV, 0x7FFFFFFF, 1)
	if o.Exc != isa.ExcCodeOverflow || !o.WroteRd || o.Result != 0x80000000 {
		t.Errorf("ADDV overflow: %+v", o)
	}
	if o := eval(isa.OpADDV, 1, 2); o.Exc != isa.ExcCodeNone {
		t.Errorf("ADDV no overflow raised %v", o.Exc)
	}
	if o := eval(isa.OpSUBV, 0x80000000, 1); o.Exc != isa.ExcCodeOverflow {
		t.Error("SUBV overflow missed")
	}
	if o := eval(isa.OpSUBV, 5, 3); o.Exc != isa.ExcCodeNone {
		t.Error("SUBV spurious overflow")
	}
	if o := eval(isa.OpMULV, 0x10000, 0x10000); o.Exc != isa.ExcCodeOverflow {
		t.Error("MULV overflow missed")
	}
	if o := eval(isa.OpMULV, 100, 100); o.Exc != isa.ExcCodeNone || o.Result != 10000 {
		t.Error("MULV spurious overflow")
	}
	if o := evalImm(isa.OpADDIV, 0x7FFFFFFF, 1); o.Exc != isa.ExcCodeOverflow {
		t.Error("ADDIV overflow missed")
	}
}

func TestDivideFaults(t *testing.T) {
	// Fault semantics: no result is written.
	o := eval(isa.OpDIV, 100, 0)
	if o.Exc != isa.ExcCodeDivideZero || o.WroteRd {
		t.Errorf("DIV/0: %+v", o)
	}
	if o := eval(isa.OpREM, 100, 0); o.Exc != isa.ExcCodeDivideZero || o.WroteRd {
		t.Errorf("REM/0: %+v", o)
	}
	// INT_MIN / -1 wraps like hardware instead of trapping or panicking.
	o = eval(isa.OpDIV, 0x80000000, 0xFFFFFFFF)
	if o.Exc != isa.ExcCodeNone || o.Result != 0x80000000 {
		t.Errorf("INT_MIN/-1 = %#x exc=%v", o.Result, o.Exc)
	}
	o = eval(isa.OpREM, 0x80000000, 0xFFFFFFFF)
	if o.Exc != isa.ExcCodeNone || o.Result != 0 {
		t.Errorf("INT_MIN%%-1 = %#x exc=%v", o.Result, o.Exc)
	}
}

func TestImmediates(t *testing.T) {
	if o := evalImm(isa.OpADDI, 10, -3); o.Result != 7 {
		t.Errorf("ADDI = %d", o.Result)
	}
	// Logical immediates use the full 32-bit immediate (rv32-style:
	// assemblers write sign-extended literals).
	if o := evalImm(isa.OpANDI, 0xFFFFFFFF, -1); o.Result != 0xFFFFFFFF {
		t.Errorf("ANDI = %#x", o.Result)
	}
	if o := evalImm(isa.OpORI, 0, -1); o.Result != 0xFFFFFFFF {
		t.Errorf("ORI = %#x", o.Result)
	}
	if o := evalImm(isa.OpXORI, 0xFFFF, -1); o.Result != 0xFFFF0000 {
		t.Errorf("XORI = %#x", o.Result)
	}
	if o := evalImm(isa.OpANDI, 0x1234FFFF, 0xFF); o.Result != 0xFF {
		t.Errorf("ANDI small = %#x", o.Result)
	}
	if o := evalImm(isa.OpSLTI, negu(5), -1); o.Result != 1 {
		t.Errorf("SLTI = %d", o.Result)
	}
	if o := evalImm(isa.OpLUI, 0, 0x1234); o.Result != 0x12340000 {
		t.Errorf("LUI = %#x", o.Result)
	}
	if o := evalImm(isa.OpSLLI, 1, 5); o.Result != 32 {
		t.Errorf("SLLI = %d", o.Result)
	}
	if o := evalImm(isa.OpSRAI, 0x80000000, 4); o.Result != 0xF8000000 {
		t.Errorf("SRAI = %#x", o.Result)
	}
}

func TestBranches(t *testing.T) {
	cases := []struct {
		op    isa.Op
		a, b  uint32
		taken bool
	}{
		{isa.OpBEQ, 5, 5, true},
		{isa.OpBEQ, 5, 6, false},
		{isa.OpBNE, 5, 6, true},
		{isa.OpBLT, ^uint32(0), 0, true},
		{isa.OpBLT, 0, ^uint32(0), false},
		{isa.OpBGE, 0, 0, true},
		{isa.OpBLTU, 0, ^uint32(0), true},
		{isa.OpBGEU, ^uint32(0), 0, true},
	}
	for _, c := range cases {
		in := isa.Inst{Op: c.op, Rs1: 1, Rs2: 2, Imm: 5}
		o := EvalALU(in, c.a, c.b, 10)
		if o.Taken != c.taken {
			t.Errorf("%v(%#x,%#x) taken=%v want %v", c.op, c.a, c.b, o.Taken, c.taken)
		}
		if o.Target != 16 {
			t.Errorf("%v target = %d, want 16", c.op, o.Target)
		}
	}
}

func TestJumps(t *testing.T) {
	o := EvalALU(isa.Inst{Op: isa.OpJ, Imm: 40}, 0, 0, 10)
	if !o.Taken || o.Target != 40 || o.WroteRd {
		t.Errorf("J: %+v", o)
	}
	o = EvalALU(isa.Inst{Op: isa.OpJAL, Rd: 31, Imm: 40}, 0, 0, 10)
	if !o.Taken || o.Target != 40 || !o.WroteRd || o.Result != 11 {
		t.Errorf("JAL: %+v", o)
	}
	o = EvalALU(isa.Inst{Op: isa.OpJR, Rs1: 31}, 25, 0, 10)
	if !o.Taken || o.Target != 25 {
		t.Errorf("JR: %+v", o)
	}
	o = EvalALU(isa.Inst{Op: isa.OpJALR, Rd: 1, Rs1: 31}, 25, 0, 10)
	if !o.Taken || o.Target != 25 || o.Result != 11 {
		t.Errorf("JALR: %+v", o)
	}
}

func TestSystem(t *testing.T) {
	o := EvalALU(isa.Inst{Op: isa.OpTRAP, Imm: 9}, 0, 0, 10)
	if o.Exc != isa.ExcCodeSoftware || o.TrapInfo != 9 {
		t.Errorf("TRAP: %+v", o)
	}
	if o := EvalALU(isa.Inst{Op: isa.OpHALT}, 0, 0, 10); !o.Halt {
		t.Error("HALT")
	}
	if o := EvalALU(isa.Inst{Op: isa.OpNOP}, 0, 0, 10); o.WroteRd || o.Halt || o.Exc != isa.ExcCodeNone {
		t.Error("NOP must do nothing")
	}
	if o := EvalALU(isa.Inst{Op: isa.OpInvalid}, 0, 0, 10); o.Exc != isa.ExcCodeBadInst {
		t.Error("invalid opcode must fault")
	}
}

func TestStoreLoadBytes(t *testing.T) {
	// SW covers the whole longword.
	addr, data, mask := StoreBytes(isa.OpSW, 0x1004, 0xAABBCCDD)
	if addr != 0x1004 || data != 0xAABBCCDD || mask != 0b1111 {
		t.Errorf("SW: %#x %#x %b", addr, data, mask)
	}
	// SB positions the byte in its lane.
	addr, data, mask = StoreBytes(isa.OpSB, 0x1006, 0xFF12)
	if addr != 0x1004 || data != 0x00120000 || mask != 0b0100 {
		t.Errorf("SB: %#x %#x %b", addr, data, mask)
	}
	// LoadValue extracts and extends.
	if v := LoadValue(isa.OpLW, 0x1004, 0x11223344); v != 0x11223344 {
		t.Errorf("LW: %#x", v)
	}
	if v := LoadValue(isa.OpLB, 0x1006, 0x00800000); v != 0xFFFFFF80 {
		t.Errorf("LB sign extend: %#x", v)
	}
	if v := LoadValue(isa.OpLBU, 0x1006, 0x00800000); v != 0x80 {
		t.Errorf("LBU zero extend: %#x", v)
	}
}

func TestAccessSize(t *testing.T) {
	if AccessSize(isa.OpLW) != 4 || AccessSize(isa.OpSW) != 4 {
		t.Error("longword size")
	}
	if AccessSize(isa.OpLB) != 1 || AccessSize(isa.OpLBU) != 1 || AccessSize(isa.OpSB) != 1 {
		t.Error("byte size")
	}
}

// TestQuickOverflowConsistency checks ADDV's trap decision against
// 64-bit arithmetic for arbitrary inputs.
func TestQuickOverflowConsistency(t *testing.T) {
	f := func(a, b int32) bool {
		o := eval(isa.OpADDV, uint32(a), uint32(b))
		wide := int64(a) + int64(b)
		wantTrap := wide != int64(int32(wide))
		return (o.Exc == isa.ExcCodeOverflow) == wantTrap && o.Result == uint32(a+b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b int32) bool {
		o := eval(isa.OpSUBV, uint32(a), uint32(b))
		wide := int64(a) - int64(b)
		wantTrap := wide != int64(int32(wide))
		return (o.Exc == isa.ExcCodeOverflow) == wantTrap
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickStoreBytesMergeIdentity: storing then loading through the
// longword representation reproduces the stored byte.
func TestQuickStoreBytesMergeIdentity(t *testing.T) {
	f := func(addrRaw uint32, v uint32, old uint32) bool {
		addr := addrRaw % 0x10000
		_, data, mask := StoreBytes(isa.OpSB, addr, v)
		merged := old
		for i := 0; i < 4; i++ {
			if mask&(1<<i) != 0 {
				shift := uint(8 * i)
				merged = merged&^(0xff<<shift) | data&(0xff<<shift)
			}
		}
		return LoadValue(isa.OpLBU, addr, merged) == v&0xff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHandlerActions(t *testing.T) {
	cases := map[isa.ExcCode]ExcAction{
		isa.ExcCodePageFault:  ActResume,
		isa.ExcCodeMisaligned: ActSkip,
		isa.ExcCodeDivideZero: ActSkip,
		isa.ExcCodeOverflow:   ActContinue,
		isa.ExcCodeSoftware:   ActContinue,
		isa.ExcCodeBadInst:    ActHalt,
	}
	for code, want := range cases {
		if got := HandlerAction(code); got != want {
			t.Errorf("HandlerAction(%v) = %v, want %v", code, got, want)
		}
	}
}

func TestExpandScalar(t *testing.T) {
	in := isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 2, Rs2: 3}
	es := Expand(in)
	if len(es) != 1 || es[0] != in {
		t.Errorf("scalar expand: %v", es)
	}
}

func TestExpandVector(t *testing.T) {
	// VLW r8, 100(r2) -> LW r8..r11 from 100,104,108,112(r2).
	es := Expand(isa.Inst{Op: isa.OpVLW, Rd: 8, Rs1: 2, Imm: 100})
	if len(es) != isa.VectorLen {
		t.Fatalf("len %d", len(es))
	}
	for i, e := range es {
		if e.Op != isa.OpLW || e.Rd != isa.Reg(8+i) || e.Rs1 != 2 || e.Imm != int32(100+4*i) {
			t.Errorf("elem %d: %v", i, e)
		}
	}
	// VSW r4, 0(r1) -> SW r4..r7.
	es = Expand(isa.Inst{Op: isa.OpVSW, Rs2: 4, Rs1: 1})
	for i, e := range es {
		if e.Op != isa.OpSW || e.Rs2 != isa.Reg(4+i) || e.Imm != int32(4*i) {
			t.Errorf("vsw elem %d: %v", i, e)
		}
	}
	// VADD r16, r8, r12.
	es = Expand(isa.Inst{Op: isa.OpVADD, Rd: 16, Rs1: 8, Rs2: 12})
	for i, e := range es {
		if e.Op != isa.OpADD || e.Rd != isa.Reg(16+i) || e.Rs1 != isa.Reg(8+i) || e.Rs2 != isa.Reg(12+i) {
			t.Errorf("vadd elem %d: %v", i, e)
		}
	}
}

func TestVectorOpsMetadata(t *testing.T) {
	if isa.OpVLW.Ops() != isa.VectorLen || isa.OpADD.Ops() != 1 {
		t.Error("Ops counts")
	}
	if !isa.OpVADD.IsVector() || isa.OpADD.IsVector() {
		t.Error("IsVector")
	}
}
