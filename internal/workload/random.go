package workload

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/isa"
	"repro/internal/prog"
)

// RandomOpts weights the instruction mix of generated random programs.
// Probabilities are relative weights, not required to sum to one.
type RandomOpts struct {
	BodyLen   int     // instructions per loop body
	Iters     int     // loop iterations
	WALU      float64 // three-register and immediate ALU operations
	WMulDiv   float64 // MUL/DIV/REM (DIV/REM may fault dynamically)
	WTrapping float64 // ADDV/SUBV/MULV (may overflow-trap dynamically)
	WMem      float64 // scratch-region loads and stores
	WBranch   float64 // forward conditional branches
	WUnmapped float64 // accesses to unmapped pages (page faults)
	WTrap     float64 // explicit TRAP instructions
	WVector   float64 // vector (multi-operation) instructions
}

// DefaultRandomOpts exercises everything, including exceptions.
var DefaultRandomOpts = RandomOpts{
	BodyLen: 40, Iters: 16,
	WALU: 10, WMulDiv: 2, WTrapping: 1.5, WMem: 5, WBranch: 4, WUnmapped: 0.3, WTrap: 0.2,
	WVector: 1,
}

// ExceptionFreeRandomOpts generates programs that never raise
// exceptions (for schemes without E-repair capability).
var ExceptionFreeRandomOpts = RandomOpts{
	BodyLen: 40, Iters: 16,
	WALU: 10, WMulDiv: 0, WTrapping: 0, WMem: 5, WBranch: 4,
}

const (
	scratchBase = 0x4000
	resultBase  = 0x5000
	// unmappedBase starts a region with no initial pages; touching it
	// page-faults and the handler demand-maps it.
	unmappedBase = 0x9000
)

// Random generates a structured random program that always terminates:
// a fixed-iteration loop whose body is a random instruction mix, with
// only forward branches inside the body. Data-dependent branch
// outcomes, dynamic divide faults, overflow traps, and demand-paged
// accesses make these programs a thorough shakedown for checkpoint
// repair; the property tests run them on every scheme and compare
// against the reference interpreter.
func Random(seed int64, o RandomOpts) *prog.Program {
	if o.BodyLen <= 0 {
		o.BodyLen = 40
	}
	if o.Iters <= 0 {
		o.Iters = 16
	}
	key := randomKey{seed, o}
	if p, ok := randomCache.Load(key); ok {
		return p.(*prog.Program)
	}
	p, _ := randomCache.LoadOrStore(key, generateRandom(seed, o))
	return p.(*prog.Program)
}

// randomCache memoizes generated random programs per (seed, normalized
// opts) — generation is deterministic, and a stable *prog.Program
// instance keeps the per-program reference-trace cache warm across the
// property tests and sweeps that revisit the same seeds.
var randomCache sync.Map // randomKey -> *prog.Program

type randomKey struct {
	seed int64
	o    RandomOpts
}

// generateRandom builds the program for normalized options.
func generateRandom(seed int64, o RandomOpts) *prog.Program {
	rng := rand.New(rand.NewSource(seed))
	var code []isa.Inst
	app := func(in isa.Inst) { code = append(code, in) }
	reg := func() isa.Reg { return isa.Reg(1 + rng.Intn(12)) }

	// Prologue: iteration counter in r15, random constants in r1..r12.
	app(isa.Inst{Op: isa.OpADDI, Rd: 15, Rs1: 0, Imm: int32(o.Iters)})
	for r := isa.Reg(1); r <= 12; r++ {
		app(isa.Inst{Op: isa.OpADDI, Rd: r, Rs1: 0, Imm: int32(rng.Intn(4001) - 2000)})
	}
	loopStart := len(code)

	type choice struct {
		w    float64
		emit func(remaining int)
	}
	aluOps := []isa.Op{isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpNOR, isa.OpSLL, isa.OpSRL, isa.OpSRA, isa.OpSLT, isa.OpSLTU}
	aluIOps := []isa.Op{isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI, isa.OpSLTI, isa.OpSLLI, isa.OpSRLI, isa.OpSRAI, isa.OpLUI}
	brOps := []isa.Op{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU}
	choices := []choice{
		{o.WALU, func(int) {
			if rng.Intn(2) == 0 {
				app(isa.Inst{Op: aluOps[rng.Intn(len(aluOps))], Rd: reg(), Rs1: reg(), Rs2: reg()})
			} else {
				op := aluIOps[rng.Intn(len(aluIOps))]
				imm := int32(rng.Intn(2001) - 1000)
				switch op {
				case isa.OpSLLI, isa.OpSRLI, isa.OpSRAI:
					imm = int32(rng.Intn(32))
				case isa.OpLUI:
					imm = int32(rng.Intn(1 << 16))
				}
				app(isa.Inst{Op: op, Rd: reg(), Rs1: reg(), Imm: imm})
			}
		}},
		{o.WMulDiv, func(int) {
			ops := []isa.Op{isa.OpMUL, isa.OpDIV, isa.OpREM}
			app(isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: reg(), Rs1: reg(), Rs2: reg()})
		}},
		{o.WTrapping, func(int) {
			ops := []isa.Op{isa.OpADDV, isa.OpSUBV, isa.OpMULV, isa.OpADDIV}
			op := ops[rng.Intn(len(ops))]
			if op == isa.OpADDIV {
				app(isa.Inst{Op: op, Rd: reg(), Rs1: reg(), Imm: int32(rng.Intn(1 << 15))})
			} else {
				app(isa.Inst{Op: op, Rd: reg(), Rs1: reg(), Rs2: reg()})
			}
		}},
		{o.WMem, func(int) {
			// Index register r13 = (random reg) & 0xFC keeps accesses
			// aligned and inside the scratch region.
			app(isa.Inst{Op: isa.OpANDI, Rd: 13, Rs1: reg(), Imm: 0xfc})
			memOps := []isa.Op{isa.OpLW, isa.OpSW, isa.OpLB, isa.OpLBU, isa.OpSB}
			op := memOps[rng.Intn(len(memOps))]
			in := isa.Inst{Op: op, Rs1: 13, Imm: scratchBase}
			if op.Class() == isa.ClassStore {
				in.Rs2 = reg()
			} else {
				in.Rd = reg()
			}
			app(in)
		}},
		{o.WBranch, func(remaining int) {
			maxSkip := remaining - 1
			if maxSkip < 1 {
				app(isa.Inst{Op: isa.OpADD, Rd: reg(), Rs1: reg(), Rs2: reg()})
				return
			}
			if maxSkip > 8 {
				maxSkip = 8
			}
			app(isa.Inst{
				Op:  brOps[rng.Intn(len(brOps))],
				Rs1: reg(), Rs2: reg(),
				Imm: int32(1 + rng.Intn(maxSkip)),
			})
		}},
		{o.WUnmapped, func(int) {
			page := uint32(rng.Intn(4))
			addr := int32(unmappedBase + page*0x1000)
			if rng.Intn(2) == 0 {
				app(isa.Inst{Op: isa.OpSW, Rs1: 0, Rs2: reg(), Imm: addr})
			} else {
				app(isa.Inst{Op: isa.OpLW, Rd: reg(), Rs1: 0, Imm: addr})
			}
		}},
		{o.WTrap, func(int) {
			app(isa.Inst{Op: isa.OpTRAP, Imm: int32(rng.Intn(16))})
		}},
		{o.WVector, func(int) {
			// Vector groups in r16..r27 (three groups of VectorLen),
			// addressed via the aligned scratch index in r13.
			grp := func(g int) isa.Reg { return isa.Reg(16 + 4*g) }
			switch rng.Intn(3) {
			case 0:
				app(isa.Inst{Op: isa.OpANDI, Rd: 13, Rs1: reg(), Imm: 0xe0})
				app(isa.Inst{Op: isa.OpVLW, Rd: grp(rng.Intn(3)), Rs1: 13, Imm: scratchBase})
			case 1:
				app(isa.Inst{Op: isa.OpANDI, Rd: 13, Rs1: reg(), Imm: 0xe0})
				app(isa.Inst{Op: isa.OpVSW, Rs2: grp(rng.Intn(3)), Rs1: 13, Imm: scratchBase})
			case 2:
				app(isa.Inst{Op: isa.OpVADD, Rd: grp(rng.Intn(3)), Rs1: grp(rng.Intn(3)), Rs2: grp(rng.Intn(3))})
			}
		}},
	}
	var totalW float64
	for _, c := range choices {
		totalW += c.w
	}

	bodyEnd := loopStart + o.BodyLen
	for len(code) < bodyEnd {
		x := rng.Float64() * totalW
		for _, c := range choices {
			if x < c.w {
				c.emit(bodyEnd - len(code))
				break
			}
			x -= c.w
		}
	}
	// Loop footer. Branch displacement is relative to pc+1.
	app(isa.Inst{Op: isa.OpADDI, Rd: 15, Rs1: 15, Imm: -1})
	app(isa.Inst{Op: isa.OpBNE, Rs1: 15, Rs2: 0, Imm: int32(loopStart - len(code) - 1)})

	// Epilogue: expose r1..r14 in the result area.
	for r := isa.Reg(1); r <= 14; r++ {
		app(isa.Inst{Op: isa.OpSW, Rs1: 0, Rs2: r, Imm: int32(resultBase + 4*uint32(r))})
	}
	app(isa.Inst{Op: isa.OpHALT})

	p := &prog.Program{
		Name: fmt.Sprintf("random-%d", seed),
		Code: code,
		Data: []prog.Segment{
			{Addr: scratchBase, Data: make([]byte, 256)},
			{Addr: resultBase, Data: make([]byte, 256)},
		},
	}
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("workload: generated invalid program: %v", err))
	}
	return p
}
