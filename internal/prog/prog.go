// Package prog defines the program container shared by the assembler,
// the reference interpreter, and the machine simulators.
//
// Instruction memory and data memory are separate (a Harvard
// organisation): instructions live in a slice indexed by PC, data lives
// in a byte-addressed mem.Memory image. This keeps the checkpoint repair
// machinery focused on the architectural state the paper checkpoints —
// registers and data memory — without modelling self-modifying code,
// which the paper's execution model also excludes.
package prog

import (
	"fmt"
	"sync/atomic"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Segment is one initialised data region of a program image.
type Segment struct {
	Addr uint32
	Data []byte
}

// Program is a loadable unit: code, initial data, entry point, symbols.
type Program struct {
	Name    string
	Code    []isa.Inst
	Entry   int // instruction index where execution starts
	Data    []Segment
	Symbols map[string]int32 // label -> instruction index or data address

	// memo is an opaque per-program cache slot (see refsim.CachedTrace).
	// Attaching memoized derivatives to the program keeps their lifetime
	// tied to the program's own, so dynamically generated programs never
	// leak entries in a process-global table.
	memo atomic.Pointer[any]
}

// Memo returns the value stored by MemoOrStore, or nil.
func (p *Program) Memo() any {
	if v := p.memo.Load(); v != nil {
		return *v
	}
	return nil
}

// MemoOrStore publishes v as the program's memo if none is set yet and
// returns the winning value. Concurrency-safe; the first store wins.
func (p *Program) MemoOrStore(v any) any {
	if p.memo.CompareAndSwap(nil, &v) {
		return v
	}
	return *p.memo.Load()
}

// Validate checks structural well-formedness: every opcode valid, every
// register in range, every static control-flow target inside the code.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("prog %q: empty code", p.Name)
	}
	if p.Entry < 0 || p.Entry >= len(p.Code) {
		return fmt.Errorf("prog %q: entry %d out of range [0,%d)", p.Name, p.Entry, len(p.Code))
	}
	for pc, in := range p.Code {
		if !in.Op.Valid() {
			return fmt.Errorf("prog %q: pc=%d: invalid opcode", p.Name, pc)
		}
		if !in.Rd.Valid() || !in.Rs1.Valid() || !in.Rs2.Valid() {
			return fmt.Errorf("prog %q: pc=%d: register out of range", p.Name, pc)
		}
		if in.Op.IsVector() {
			// Vector register groups must fit in the file.
			if in.Op.WritesRd() && int(in.Rd)+isa.VectorLen > isa.NumRegs {
				return fmt.Errorf("prog %q: pc=%d: vector destination group overflows", p.Name, pc)
			}
			if in.Op == isa.OpVSW && int(in.Rs2)+isa.VectorLen > isa.NumRegs {
				return fmt.Errorf("prog %q: pc=%d: vector source group overflows", p.Name, pc)
			}
			if in.Op == isa.OpVADD && (int(in.Rs1)+isa.VectorLen > isa.NumRegs || int(in.Rs2)+isa.VectorLen > isa.NumRegs) {
				return fmt.Errorf("prog %q: pc=%d: vector source group overflows", p.Name, pc)
			}
		}
		switch in.Op.Format() {
		case isa.FormatBr:
			t := pc + 1 + int(in.Imm)
			if t < 0 || t >= len(p.Code) {
				return fmt.Errorf("prog %q: pc=%d: branch target %d out of range", p.Name, pc, t)
			}
		case isa.FormatJ:
			if int(in.Imm) < 0 || int(in.Imm) >= len(p.Code) {
				return fmt.Errorf("prog %q: pc=%d: jump target %d out of range", p.Name, pc, in.Imm)
			}
		}
	}
	return nil
}

// NewMemory builds a fresh data memory holding the program's initialised
// segments. Pages touched by segments are mapped; everything else is
// unmapped and will page-fault if accessed.
func (p *Program) NewMemory() *mem.Memory {
	m := mem.New()
	p.InitMemory(m)
	return m
}

// InitMemory resets m to the program's initial data image, exactly as
// NewMemory builds it, reusing m's page buffers where possible. It lets
// a machine chassis be re-run without reallocating its memory.
func (p *Program) InitMemory(m *mem.Memory) {
	m.Reset()
	for _, s := range p.Data {
		m.Map(s.Addr, uint32(len(s.Data)))
		m.WriteBytes(s.Addr, s.Data)
	}
}

// BranchTarget returns the taken target of the control instruction at
// pc. It panics if the instruction is not a branch or direct jump.
func BranchTarget(in isa.Inst, pc int) int {
	switch in.Op.Format() {
	case isa.FormatBr:
		return pc + 1 + int(in.Imm)
	case isa.FormatJ:
		return int(in.Imm)
	}
	panic(fmt.Sprintf("prog: BranchTarget on %v", in))
}

// Stats summarises static program properties used by experiment reports.
type Stats struct {
	Insts       int
	Branches    int
	Jumps       int
	Loads       int
	Stores      int
	MayTrap     int
	MayFault    int
	BranchEvery float64 // instructions per conditional branch (the paper's b)
}

// StaticStats computes static instruction-mix statistics.
func (p *Program) StaticStats() Stats {
	var s Stats
	s.Insts = len(p.Code)
	for _, in := range p.Code {
		switch in.Op.Class() {
		case isa.ClassBranch:
			s.Branches++
		case isa.ClassJump:
			s.Jumps++
		case isa.ClassLoad:
			s.Loads++
		case isa.ClassStore:
			s.Stores++
		}
		if in.Op.CanTrap() {
			s.MayTrap++
		}
		if in.Op.CanFault() {
			s.MayFault++
		}
	}
	if s.Branches > 0 {
		s.BranchEvery = float64(s.Insts) / float64(s.Branches)
	}
	return s
}
