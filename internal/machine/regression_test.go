package machine

import (
	"testing"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/workload"
)

// Regression tests for defects found while bringing the machine up.
// Each reproduces the original failure's trigger conditions.

// Regression: Backward.Repair compacted kept entries in place while
// iterating the same slice backwards, corrupting interleaved live
// entries (symptom: stale bytes in scratch memory after repeated
// B+E-repairs on seed-3 random programs under loose(1,2,6)/3b).
func TestRegressionBackwardRepairAliasing(t *testing.T) {
	p := workload.Random(3, workload.DefaultRandomOpts)
	cfg := Config{
		Scheme:    core.NewSchemeLoose(1, 2, 6),
		Predictor: bpred.NewBimodal(128),
		MemSystem: MemBackward3b,
		Speculate: true,
	}
	cfg.Timing = DefaultTiming
	cfg.Timing.ExtraLatency = func(s uint64) int { return int((s*2654435761 + 3) % 5) }
	runBoth(t, p, cfg)
}

// Regression: an E checkpoint established exactly at a mispredicted
// branch's boundary survived the B-repair with its PREDICTED-path
// resume PC; a later E-repair then precise-executed the wrong path
// (symptom: register divergence on seed-3 under direct/forward).
func TestRegressionDirectCheckpointAtBranchBoundary(t *testing.T) {
	p := workload.Random(3, workload.DefaultRandomOpts)
	cfg := Config{
		Scheme:    core.NewSchemeDirect(2, 4, 12, 0),
		Predictor: bpred.NewBimodal(128),
		MemSystem: MemForward,
		Speculate: true,
	}
	cfg.Timing = DefaultTiming
	cfg.Timing.ExtraLatency = func(s uint64) int { return int((s*2654435761 + 3) % 5) }
	runBoth(t, p, cfg)
}

// Regression: a faulting operation left its destination-register
// reservation pending in the current space and in backup spaces;
// dependents hung forever (pipeline deadlock) and a later Restart
// pushed the stale mark into a fresh checkpoint, blowing the Theorem 4
// guard on the next recall (symptom: panic on divzero under tight/3a).
func TestRegressionFaultLeavesNoStaleReservation(t *testing.T) {
	for _, ms := range []MemSystemKind{MemBackward3a, MemBackward3b, MemForward} {
		k, _ := workload.ByName("divzero")
		cfg := Config{
			Scheme:    core.NewSchemeTight(4, 0),
			Predictor: bpred.NewBimodal(256),
			MemSystem: ms,
			Speculate: true,
		}
		runBoth(t, k.Load(), cfg)
	}
}

// Regression: the E-repair trigger waits for the excepting checkpoint
// to become the oldest, which requires further checkpoint pushes; a
// window clogged with dependents of a faulted load prevented the pushes
// forever (symptom: watchdog deadlock on pagedemo under tight/loose).
// The stuck-pipeline Drain escape fires the repair instead.
func TestRegressionStuckPipelineRepairEscape(t *testing.T) {
	for _, mk := range []func() core.Scheme{
		func() core.Scheme { return core.NewSchemeTight(4, 0) },
		func() core.Scheme { return core.NewSchemeLoose(1, 2, 6) },
	} {
		k, _ := workload.ByName("pagedemo")
		cfg := Config{
			Scheme:    mk(),
			Predictor: bpred.NewBimodal(256),
			MemSystem: MemBackward3a,
			Speculate: true,
		}
		runBoth(t, k.Load(), cfg)
	}
}

// Regression: scheme window and register-file stack depth must stay in
// lockstep across establish/retire/repair; a SchemeE(1) retire left a
// nil oldest checkpoint dereference in the memory release path.
func TestRegressionSchemeESingleSpace(t *testing.T) {
	for _, k := range []string{"fib", "sieve", "divzero"} {
		kn, _ := workload.ByName(k)
		cfg := Config{
			Scheme:    core.NewSchemeE(1, 8, 0),
			Speculate: false,
			MemSystem: MemBackward3b,
		}
		runBoth(t, kn.Load(), cfg)
	}
}

// Regression: count retraction after a direct-scheme B-repair
// mis-attributed operations counted on popped E checkpoints to the
// surviving ones, driving Active negative and letting undrained
// checkpoints retire (symptom: Theorem 4 panic on random seed 0).
func TestRegressionDirectSquashAccounting(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		p := workload.Random(seed, workload.DefaultRandomOpts)
		cfg := Config{
			Scheme:    core.NewSchemeDirect(2, 4, 12, 0),
			Predictor: bpred.NewBimodal(128),
			MemSystem: MemBackward3b,
			Speculate: true,
		}
		cfg.Timing = DefaultTiming
		cfg.Timing.ExtraLatency = func(s uint64) int { return int((s*2654435761 + uint64(seed)) % 5) }
		runBoth(t, p, cfg)
	}
}
