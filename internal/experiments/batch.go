package experiments

import (
	"context"
	"sync/atomic"

	"repro/internal/machine"
	"repro/internal/prog"
)

// batchingOff gates the batch-lockstep sweep engine. With batching on
// (the default), every sweep that runs several configurations of the
// same program groups them into machine.RunBatch lanes sharing the
// memoized reference trace, and singleton runs draw pooled chassis;
// with it off, each job is an independent machine.Run, reproducing the
// pre-batching execution path exactly. Tables are byte-identical either
// way — the three-way equivalence tests prove it.
var batchingOff atomic.Bool

// SetBatching enables or disables batch-lockstep sweep execution for
// subsequent experiment runs.
func SetBatching(on bool) { batchingOff.Store(!on) }

// Batching reports whether batch-lockstep sweep execution is enabled.
func Batching() bool { return !batchingOff.Load() }

// batchWidth is the number of lanes grouped into one lockstep batch.
// Lanes within a batch run on one goroutine; batches (and unrelated
// jobs) spread across the worker pool, so the width trades per-batch
// chassis/trace locality against sweep-level parallelism. Eight lanes
// covers most per-program sweep axes in one or two batches while
// leaving a typical sweep enough batches to fill the pool.
const batchWidth = 8

// jobOutcome is one sweep job's result or error. Sweeps that expect
// failures (deadlocking configurations) consume outcomes directly;
// runParallel panics on the first error instead.
type jobOutcome struct {
	res *machine.Result
	err error
}

// RemoteBatchRunner offloads one batch group of a sweep — all jobs
// share prog p; cfgs are the raw per-lane configs before wire()
// instruments them. A runner returns ok=false to decline (the group
// then runs locally, the exact pre-hook path), and must otherwise
// return len(cfgs) results/errors carrying everything a local run
// would: sweeps read full architectural state, stats, and sentinel
// errors out of these. The cluster coordinator installs one to fan
// sweep batches out to workers.
type RemoteBatchRunner func(ctx context.Context, p *prog.Program, cfgs []machine.Config) ([]*machine.Result, []error, bool)

// remoteBatch holds the installed RemoteBatchRunner (or nil).
var remoteBatch atomic.Value // of RemoteBatchRunner

// SetRemoteBatchRunner installs (or, with nil, removes) the hook that
// runJobs offers each batch group to before executing it locally. The
// hook is process-global, like the fast-path switches: installing it
// affects every concurrent sweep, so only one coordinator may own it.
func SetRemoteBatchRunner(r RemoteBatchRunner) { remoteBatch.Store(r) }

func remoteBatchRunner() RemoteBatchRunner {
	r, _ := remoteBatch.Load().(RemoteBatchRunner)
	return r
}

// runJobs executes the jobs on the package pool and returns outcomes in
// job order. It is the batch-aware job-grouping choke point every sweep
// funnels through: jobs sharing a program are grouped, in first-seen
// order, into lockstep batches of up to batchWidth lanes, and each
// batch is one pool task. With batching (or the fast paths) off, every
// job runs individually through simRun.
func runJobs(ctx context.Context, jobs []runJob) []jobOutcome {
	return runJobsRemote(ctx, jobs, true)
}

// runJobsRemote is runJobs with the remote hook gated: sub-job
// execution on a worker (RunConfigs) must not re-offer its jobs to the
// hook, or an in-process cluster would dispatch them in a loop.
func runJobsRemote(ctx context.Context, jobs []runJob, allowRemote bool) []jobOutcome {
	outs := make([]jobOutcome, len(jobs))
	if !Batching() || !FastPaths() {
		parMap(ctx, len(jobs), func(i int) {
			outs[i].res, outs[i].err = simRun(jobs[i].prog, jobs[i].cfg)
		})
		return outs
	}
	var remote RemoteBatchRunner
	if allowRemote {
		remote = remoteBatchRunner()
	}
	batches := groupJobs(jobs)
	parMap(ctx, len(batches), func(bi int) {
		group := batches[bi]
		p := jobs[group[0]].prog
		if remote != nil {
			raw := make([]machine.Config, len(group))
			for j, i := range group {
				raw[j] = jobs[i].cfg
			}
			if results, errs, ok := remote(ctx, p, raw); ok {
				for j, i := range group {
					outs[i] = jobOutcome{res: results[j], err: errs[j]}
				}
				return
			}
		}
		if len(group) == 1 {
			i := group[0]
			outs[i].res, outs[i].err = simRun(jobs[i].prog, jobs[i].cfg)
			return
		}
		cfgs := make([]machine.Config, len(group))
		for j, i := range group {
			cfgs[j] = wire(p, jobs[i].cfg)
		}
		results, errs := machine.RunBatch(p, cfgs)
		for j, i := range group {
			outs[i] = jobOutcome{res: results[j], err: errs[j]}
		}
	})
	return outs
}

// RunConfigs executes one program under several configurations through
// the sweep engine's grouping choke point — the exact path a local
// sweep batch takes (lockstep lanes, pooled chassis, memoized reference
// trace, fast-path switches). Cluster workers execute remote batch
// sub-jobs through it so their results cannot diverge from a
// coordinator-local run. Returns ctx.Err() if cancelled mid-flight.
func RunConfigs(ctx context.Context, p *prog.Program, cfgs []machine.Config) (results []*machine.Result, errs []error, err error) {
	defer func() {
		if r := recover(); r != nil {
			cu, ok := r.(cancelUnwind)
			if !ok {
				panic(r)
			}
			results, errs, err = nil, nil, cu.err
		}
	}()
	jobs := make([]runJob, len(cfgs))
	for i := range cfgs {
		jobs[i] = runJob{name: p.Name, prog: p, cfg: cfgs[i]}
	}
	outs := runJobsRemote(ctx, jobs, false)
	results = make([]*machine.Result, len(outs))
	errs = make([]error, len(outs))
	for i, o := range outs {
		results[i], errs[i] = o.res, o.err
	}
	return results, errs, nil
}

// groupJobs partitions job indices into batches: consecutive (in
// first-seen program order) jobs sharing a *prog.Program go to the same
// batch until it reaches batchWidth, then a fresh batch opens. Grouping
// is by pointer identity, matching the trace cache's memoization key.
func groupJobs(jobs []runJob) [][]int {
	var batches [][]int
	open := make(map[*prog.Program]int, 4) // program -> open batch index
	for i := range jobs {
		p := jobs[i].prog
		bi, ok := open[p]
		if !ok || len(batches[bi]) >= batchWidth {
			batches = append(batches, nil)
			bi = len(batches) - 1
			open[p] = bi
		}
		batches[bi] = append(batches[bi], i)
	}
	return batches
}
