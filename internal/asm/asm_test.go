package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestBasicProgram(t *testing.T) {
	p, err := Assemble("t", `
    addi r1, r0, 10     ; comment
loop:
    addi r1, r1, -1     # another comment style
    bne  r1, r0, loop
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 4 {
		t.Fatalf("len %d", len(p.Code))
	}
	if p.Code[0].Op != isa.OpADDI || p.Code[0].Imm != 10 {
		t.Errorf("inst 0: %v", p.Code[0])
	}
	// bne at pc 2 targets pc 1: imm = 1 - 3 = -2.
	if p.Code[2].Op != isa.OpBNE || p.Code[2].Imm != -2 {
		t.Errorf("branch: %v", p.Code[2])
	}
	if p.Symbols["loop"] != 1 {
		t.Errorf("label loop = %d", p.Symbols["loop"])
	}
}

func TestDataDirectives(t *testing.T) {
	p, err := Assemble("t", `
    lw r1, tab(r0)
    halt
.data 0x1000
tab: .word 1, 2, 0x30
bs:  .byte 9, 8
sp:  .space 6
end: .word -1
`)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMemory()
	if v, _ := m.Read32(0x1000); v != 1 {
		t.Errorf("tab[0] = %d", v)
	}
	if v, _ := m.Read32(0x1008); v != 0x30 {
		t.Errorf("tab[2] = %#x", v)
	}
	if b, _ := m.Read8(0x100C); b != 9 {
		t.Errorf("bs[0] = %d", b)
	}
	// end = 0x1000 + 12 + 2 + 6 = 0x1014
	if p.Symbols["end"] != 0x1014 {
		t.Errorf("end = %#x", p.Symbols["end"])
	}
	if v, _ := m.Read32(0x1014); v != 0xFFFFFFFF {
		t.Errorf("end word = %#x", v)
	}
	// The lw references the data label as an absolute offset.
	if p.Code[0].Imm != 0x1000 || p.Code[0].Rs1 != 0 {
		t.Errorf("lw operand: %v", p.Code[0])
	}
}

func TestEntryDirective(t *testing.T) {
	p, err := Assemble("t", `
helper:
    halt
main:
    j main
.entry main
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 1 {
		t.Errorf("entry = %d", p.Entry)
	}
}

func TestRegisterAliases(t *testing.T) {
	p, err := Assemble("t", `
    addi sp, r0, 64
    addi fp, sp, 0
    jal  ra, f
    halt
f:
    jr ra
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Rd != 30 || p.Code[1].Rd != 29 || p.Code[2].Rd != 31 || p.Code[4].Rs1 != 31 {
		t.Errorf("aliases: %v", p.Code)
	}
}

func TestMemOperandForms(t *testing.T) {
	p, err := Assemble("t", `
    lw r1, 8(r2)
    lw r1, (r2)
    lw r1, 0x20
    sw r3, -4(r5)
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Imm != 8 || p.Code[0].Rs1 != 2 {
		t.Error("imm(reg)")
	}
	if p.Code[1].Imm != 0 || p.Code[1].Rs1 != 2 {
		t.Error("(reg)")
	}
	if p.Code[2].Imm != 0x20 || p.Code[2].Rs1 != 0 {
		t.Error("bare imm")
	}
	if p.Code[3].Imm != -4 || p.Code[3].Rs2 != 3 || p.Code[3].Rs1 != 5 {
		t.Error("store form")
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"bogus r1, r2, r3":          "unknown mnemonic",
		"add r1, r2":                "expects 3 operands",
		"add r1, r2, r99":           "bad register",
		"beq r1, r2, nowhere\nhalt": "bad branch target",
		"lw r1, 8(r2\nhalt":         "bad memory operand",
		".data\nhalt":               ".data address",
		".word 1":                   "outside data section",
		"x: halt\nx: halt":          "duplicate label",
		"halt\n.entry missing":      "no such code label",
		"1bad: halt":                "invalid label",
		".data 0x100\nhalt":         "instruction in data section",
	}
	for src, wantSub := range cases {
		_, err := Assemble("t", src)
		if err == nil {
			t.Errorf("%q: expected error", src)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%q: error %q, want substring %q", src, err, wantSub)
		}
	}
}

func TestBranchOutOfRangeRejected(t *testing.T) {
	if _, err := Assemble("t", "beq r1, r2, +100\nhalt"); err == nil {
		t.Error("out-of-range branch accepted")
	}
}

func TestMultipleLabelsOneLine(t *testing.T) {
	p, err := Assemble("t", `
a: b: halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["a"] != 0 || p.Symbols["b"] != 0 {
		t.Error("stacked labels")
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
main:
    addi r1, r0, 5
loop:
    addi r1, r1, -1
    bne  r1, r0, loop
    trap 3
    halt
`
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	dis := Disassemble(p)
	for _, want := range []string{"main:", "loop:", "addi r1, r0, 5", "trap 3", "halt"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestNumericFormats(t *testing.T) {
	p, err := Assemble("t", `
    addi r1, r0, 0x10
    addi r2, r0, -16
    addi r3, r0, 0b101
    addi r4, r0, 0o17
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0x10, -16, 5, 15}
	for i, w := range want {
		if p.Code[i].Imm != w {
			t.Errorf("imm %d = %d, want %d", i, p.Code[i].Imm, w)
		}
	}
}

func TestVectorSyntax(t *testing.T) {
	p, err := Assemble("t", `
    addi r2, r0, 0x1000
    vlw  r8, 0(r2)
    vadd r16, r8, r8
    vsw  r16, 16(r2)
    halt
.data 0x1000
v: .space 64
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[1].Op != isa.OpVLW || p.Code[1].Rd != 8 || p.Code[1].Rs1 != 2 {
		t.Errorf("vlw: %v", p.Code[1])
	}
	if p.Code[2].Op != isa.OpVADD || p.Code[2].Rd != 16 {
		t.Errorf("vadd: %v", p.Code[2])
	}
	if p.Code[3].Op != isa.OpVSW || p.Code[3].Rs2 != 16 || p.Code[3].Imm != 16 {
		t.Errorf("vsw: %v", p.Code[3])
	}
	// Register-group overflow is rejected at validation.
	if _, err := Assemble("t", "vlw r30, 0(r1)\nhalt"); err == nil {
		t.Error("vlw r30 (group 30..33) accepted")
	}
}
