// Package diff implements the paper's "difference technique" for
// checkpointing cache/main memory (§3.2.2, §4.1.2): one full-sized
// physical storage reflects the current (out-of-order) execution state,
// and per-checkpoint lists of modifications — differences — allow any
// active checkpoint's logical space to be reconstructed.
//
//   - A BACKWARD difference is an undo log: each out-of-order memory
//     write goes straight into the cache and pushes the overwritten
//     longword (physical longword address, byte mask, longword data,
//     checkpoint identification — exactly the paper's entry format).
//     Repair pops entries, newest first, restoring original contents.
//     Two repair algorithms are provided: Algorithm 3(a), which
//     conservatively sets the dirty bit of every recovered cached line,
//     and Algorithm 3(b), which additionally saves the purged dirty bit
//     in each entry and keeps a per-line hazard bit so that lines whose
//     memory copy is still correct stay clean — avoiding unnecessary
//     future write-backs.
//
//   - A FORWARD difference is a redo log: writes are buffered and only
//     applied to the memory system when their checkpoint verifies
//     (retires); repair simply discards the not-yet-applied suffix.
//     Loads must snoop the buffer (store-to-load forwarding). This is
//     the Reorder Buffer Method of Smith & Pleszkun generalised to
//     unpredictable execution times, and is the technique the paper
//     recommends for B-repair.
//
// Checkpoint identifiers are monotonically increasing uint64 sequence
// numbers (the paper decrements a small hardware counter; the direction
// is immaterial to the algorithms).
package diff

import (
	"repro/internal/isa"
)

// MemSystem is the interface the machines use for speculative data
// memory, implemented by both difference directions (and by the plain
// write-through used in baselines).
type MemSystem interface {
	// Load returns the aligned longword containing addr as observed by
	// the current speculative execution state, and whether it hit in the
	// cache (or forwarded from the buffer).
	Load(addr uint32) (v uint32, hit bool, exc isa.ExcCode)
	// Store performs a speculative masked longword write tagged with the
	// checkpoint identification carried by the storing operation.
	// ok=false means the difference buffer is full of live entries and
	// the store must stall (paper Theorem 7 territory).
	Store(ckpt uint64, addr uint32, data uint32, mask uint8) (ok bool, hit bool, exc isa.ExcCode)
	// CheckAccess reports the exception a size-byte access at addr would
	// raise, without side effects.
	CheckAccess(addr, size uint32) isa.ExcCode
	// Release informs the system that every checkpoint with id <
	// oldestLive has retired and can no longer be a repair target.
	Release(oldestLive uint64)
	// Repair restores the memory state of the checkpoint with id `to`:
	// the effects of every store carrying id >= to are undone (backward)
	// or discarded (forward).
	Repair(to uint64)
	// Finish drains all speculative state (applies pending forward
	// entries, flushes the cache) so the backing memory holds the final
	// architectural image.
	Finish()
	// Peek returns the aligned longword containing addr as the current
	// logical space observes it, without perturbing cache state or
	// counters (no fills, no LRU movement, no stats). ok=false means the
	// address is unmapped. Debug inspection (the session subsystem) and
	// state-equivalence tests read through it.
	Peek(addr uint32) (v uint32, ok bool)
	// Stats returns buffer event counters.
	Stats() Stats
	// UndoneCounter returns a pointer to the Stats().Undone counter.
	// The machine polls it twice per simulated cycle to meter repair
	// shift-register work, so it reads the counter directly rather than
	// copying the whole Stats struct through the interface.
	UndoneCounter() *int
}

// Stats counts difference-buffer events.
type Stats struct {
	Pushes       int
	MaxOccupancy int
	StallStores  int // stores rejected because the buffer was full of live entries
	Repairs      int
	Undone       int // backward: entries applied during repairs
	Discarded    int // forward: entries dropped by repairs
	Applied      int // forward: entries retired into the cache
	Overflowed   int // backward: dead entries discarded on overflow
}

// Table1 computes the next state of a cache line's dirty and hazard
// bits when Algorithm 3(b) applies one backward-difference entry to a
// line that is present in the cache (repair case 2).
//
// Inputs follow the paper's Table 1: h is the line's hazard bit, s the
// saved dirty bit carried by the entry (the line's dirty bit at the
// moment the write being undone was performed), d the line's current
// dirty bit.
//
// The printed table in our source scan is partially illegible, so the
// function is derived from the paper's own specification of the bits —
// hazard means "the memory version of this line is known incorrect",
// and Theorem 6 requires dirty to be set after repair iff memory is
// inconsistent with the line:
//
//   - h=1: memory is already wrong for this line; undoing more writes
//     cannot fix it. dirty'=1, hazard'=1.
//   - h=0, s=0, d=1: the line was clean when the write executed, so the
//     value being restored equals the memory copy of that time, and no
//     write-back has intervened (an intervening write-back would have
//     been detected by an earlier-undone, newer entry and set the
//     hazard). After restoring, cache == memory: dirty'=0, hazard'=0.
//   - h=0, d=0 (any s): the line currently matches memory, and the undo
//     is about to change the cache, leaving memory holding undone —
//     wrong — data: dirty'=1, hazard'=1.
//   - h=0, s=1, d=1: an ordinary dirty chain; memory is stale in the
//     usual write-back sense but not wrong: dirty'=1, hazard'=0.
//
// The exhaustive history model-check in table1_test.go verifies that
// these functions make Theorem 6 hold over every interleaving of
// writes, replacements and refills.
func Table1(h, s, d bool) (nextDirty, nextHazard bool) {
	if h {
		return true, true
	}
	if !d {
		return true, true
	}
	if s {
		return true, false
	}
	return false, false
}

// entryArenaCap sizes the preallocated entry arena of a difference
// buffer: the full hardware capacity for a bounded buffer (it can never
// grow past it), a generous default for an unbounded one. Entry slices
// are compacted in place, so after warm-up the buffers allocate nothing
// on the store/repair hot paths.
func entryArenaCap(capacity int) int {
	if capacity > 0 {
		return capacity
	}
	return 256
}

// Entry is one difference-buffer element: the paper's (physical
// longword address, byte mask, longword data, checkpoint
// identification) plus, for Algorithm 3(b), the saved dirty bit.
type Entry struct {
	Addr       uint32 // longword-aligned physical address
	Mask       uint8  // byte lanes covered
	Data       uint32 // backward: overwritten data; forward: data to write
	Ckpt       uint64 // checkpoint identification carried by the operation
	SavedDirty bool   // backward, Algorithm 3(b): line dirty bit before the write
}
