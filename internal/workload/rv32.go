package workload

import (
	"fmt"
	"strings"

	"repro/internal/prog"
	"repro/internal/rv32"
)

// rv32 corpus binaries register under an "rv32:" name prefix — the
// same resolution path every tool already uses ("-workload rv32:fib")
// now reaches real compiled programs. Kernels() stays the assembly
// registry; the corpus is an extra namespace, not extra entries in the
// default experiment matrix.
const rv32Prefix = "rv32:"

// RV32Names lists the corpus workload names, prefix included.
func RV32Names() []string {
	names := rv32.CorpusNames()
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = rv32Prefix + n
	}
	return out
}

// rv32ByName resolves "rv32:<corpus>" to a loader-backed Kernel.
func rv32ByName(name string) (Kernel, error) {
	base := strings.TrimPrefix(name, rv32Prefix)
	data, err := rv32.CorpusBytes(base)
	if err != nil {
		return Kernel{}, fmt.Errorf("workload: %w", err)
	}
	return Kernel{
		Name:        name,
		Description: "rv32 corpus binary " + base + " (compiled rv32i, translated)",
		// Every corpus binary demand-pages at least one fresh page, so
		// all of them architecturally except.
		Excepts: true,
		loader: func() (*prog.Program, error) {
			return rv32.LoadProgram(base, data)
		},
	}, nil
}
