package rv32

import (
	"encoding/binary"
	"fmt"

	"repro/internal/prog"
)

// Minimal ELF32 executable parsing: little-endian EM_RISCV ET_EXEC
// files described entirely by their program headers (sections are
// ignored). Exactly one PT_LOAD segment may be executable — it becomes
// the Image text — and the rest load as initialised data.

const (
	elfClass32   = 1
	elfData2LSB  = 1
	elfTypeExec  = 2
	elfMachRISCV = 243
	ptLoad       = 1
	pfX          = 1
)

// ELF file layout offsets (32-bit class).
const (
	ehSize = 52
	phSize = 32
)

// LoadELF parses a minimal ELF32 rv32 executable.
func LoadELF(name string, data []byte) (*Image, error) {
	fail := func(format string, args ...any) (*Image, error) {
		return nil, &LoadError{name, fmt.Sprintf(format, args...)}
	}
	if len(data) < ehSize {
		return fail("truncated ELF header (%d bytes)", len(data))
	}
	if !IsELF(data) {
		return fail("bad ELF magic")
	}
	if data[4] != elfClass32 {
		return fail("not a 32-bit ELF (EI_CLASS %d)", data[4])
	}
	if data[5] != elfData2LSB {
		return fail("not little-endian (EI_DATA %d)", data[5])
	}
	le := binary.LittleEndian
	if t := le.Uint16(data[16:]); t != elfTypeExec {
		return fail("not an executable (e_type %d)", t)
	}
	if m := le.Uint16(data[18:]); m != elfMachRISCV {
		return fail("not RISC-V (e_machine %d)", m)
	}
	entry := le.Uint32(data[24:])
	phoff := le.Uint32(data[28:])
	phentsize := le.Uint16(data[42:])
	phnum := le.Uint16(data[44:])
	if phnum == 0 {
		return fail("no program headers")
	}
	if phentsize < phSize {
		return fail("e_phentsize %d too small", phentsize)
	}

	img := &Image{Name: name, Entry: entry}
	for i := 0; i < int(phnum); i++ {
		off := uint64(phoff) + uint64(i)*uint64(phentsize)
		if off+phSize > uint64(len(data)) {
			return fail("program header %d out of file bounds", i)
		}
		ph := data[off:]
		if le.Uint32(ph[0:]) != ptLoad {
			continue
		}
		pOffset := le.Uint32(ph[4:])
		pVaddr := le.Uint32(ph[8:])
		pFilesz := le.Uint32(ph[16:])
		pMemsz := le.Uint32(ph[20:])
		pFlags := le.Uint32(ph[24:])
		if pMemsz < pFilesz {
			return fail("segment %d: memsz %d < filesz %d", i, pMemsz, pFilesz)
		}
		if uint64(pOffset)+uint64(pFilesz) > uint64(len(data)) {
			return fail("segment %d: file range out of bounds", i)
		}
		if uint64(pVaddr)+uint64(pMemsz) > 1<<32 {
			return fail("segment %d: address range wraps", i)
		}
		seg := make([]byte, pMemsz)
		copy(seg, data[pOffset:pOffset+pFilesz])
		if pFlags&pfX != 0 {
			if img.Text != nil {
				return fail("multiple executable segments")
			}
			if pVaddr%4 != 0 {
				return fail("executable segment at %#x is not 4-aligned", pVaddr)
			}
			for len(seg)%4 != 0 {
				seg = append(seg, 0)
			}
			img.TextBase = pVaddr
			img.Text = seg
		} else {
			img.Data = append(img.Data, prog.Segment{Addr: pVaddr, Data: seg})
		}
	}
	if img.Text == nil {
		return fail("no executable segment")
	}
	if entry < img.TextBase || entry >= img.TextBase+uint32(len(img.Text)) {
		return fail("entry %#x outside text [%#x,%#x)", entry, img.TextBase, img.TextBase+uint32(len(img.Text)))
	}
	if entry%4 != 0 {
		return fail("entry %#x is not 4-aligned", entry)
	}
	return img, nil
}

// WriteELF serialises an Image as a minimal ELF32 executable — the
// inverse of LoadELF, used by the corpus generator so the loader's ELF
// path has a committed real input.
func WriteELF(img *Image) []byte {
	le := binary.LittleEndian
	segs := 1 + len(img.Data)
	hdr := make([]byte, ehSize+phSize*segs)
	copy(hdr, elfMagic)
	hdr[4] = elfClass32
	hdr[5] = elfData2LSB
	hdr[6] = 1 // EV_CURRENT
	le.PutUint16(hdr[16:], elfTypeExec)
	le.PutUint16(hdr[18:], elfMachRISCV)
	le.PutUint32(hdr[20:], 1) // e_version
	le.PutUint32(hdr[24:], img.Entry)
	le.PutUint32(hdr[28:], ehSize) // e_phoff
	le.PutUint16(hdr[40:], ehSize) // e_ehsize
	le.PutUint16(hdr[42:], phSize)
	le.PutUint16(hdr[44:], uint16(segs))

	var body []byte
	fileOff := uint32(len(hdr))
	ph := func(i int, vaddr uint32, data []byte, flags uint32) {
		p := hdr[ehSize+phSize*i:]
		le.PutUint32(p[0:], ptLoad)
		le.PutUint32(p[4:], fileOff)
		le.PutUint32(p[8:], vaddr)
		le.PutUint32(p[12:], vaddr) // p_paddr
		le.PutUint32(p[16:], uint32(len(data)))
		le.PutUint32(p[20:], uint32(len(data)))
		le.PutUint32(p[24:], flags)
		le.PutUint32(p[28:], 4) // p_align
		body = append(body, data...)
		fileOff += uint32(len(data))
	}
	ph(0, img.TextBase, img.Text, pfX|4) // R+X
	for i, s := range img.Data {
		ph(1+i, s.Addr, s.Data, 4|2) // R+W
	}
	return append(hdr, body...)
}
