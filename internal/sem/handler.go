package sem

import "repro/internal/isa"

// ExcAction is the architected effect of the (simulated) operating
// system's exception handler. Every engine applies the same policy, so
// post-exception execution is deterministic and comparable across the
// golden model and all machines.
type ExcAction uint8

// Handler actions.
const (
	// ActResume re-executes the violating instruction. Used for page
	// faults after the handler maps the missing page (demand paging).
	ActResume ExcAction = iota
	// ActSkip resumes at the instruction after the violating one without
	// executing it (the handler emulated or suppressed it).
	ActSkip
	// ActContinue resumes after a trap; the trapping instruction already
	// completed, per trap semantics.
	ActContinue
	// ActHalt stops the machine.
	ActHalt
)

// HandlerAction returns the architected handler action for an exception
// code. Page faults additionally require the caller to map the faulting
// page in the backing memory before resuming.
func HandlerAction(code isa.ExcCode) ExcAction {
	switch code {
	case isa.ExcCodePageFault:
		return ActResume
	case isa.ExcCodeMisaligned, isa.ExcCodeDivideZero:
		return ActSkip
	case isa.ExcCodeOverflow, isa.ExcCodeSoftware:
		return ActContinue
	default:
		// Includes machine checks: a detected transient fault the
		// checkpoint hardware could not repair transparently is fatal.
		return ActHalt
	}
}
