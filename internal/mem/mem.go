// Package mem implements the simulated main memory.
//
// Memory is byte-addressed and paged. Accesses to unmapped pages raise
// page faults, one of the E-repair sources in the checkpoint repair
// paper: a faulting load or store must appear never to have executed, so
// the repair mechanism has to restore state to the instruction boundary
// just to the left of the access.
//
// The data memory modelled here is the architectural "main memory" half
// of a logical space (paper §2.3). The cache (internal/cache) and
// difference buffers (internal/diff) layer the checkpointing machinery on
// top of this backing store; the in-order reference interpreter
// (internal/refsim) uses it directly.
package mem

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// PageSize is the size in bytes of a memory page. Page granularity only
// matters for fault behaviour; it has no timing significance.
const PageSize = 4096

// Memory is a paged byte-addressed memory. The zero value is an empty
// memory with no mapped pages.
type Memory struct {
	pages map[uint32][]byte
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint32][]byte)}
}

// Clone returns a deep copy of the memory.
func (m *Memory) Clone() *Memory {
	c := New()
	for pn, pg := range m.pages {
		np := make([]byte, PageSize)
		copy(np, pg)
		c.pages[pn] = np
	}
	return c
}

// Map ensures every page overlapping [addr, addr+size) is mapped,
// zero-filling newly created pages.
func (m *Memory) Map(addr, size uint32) {
	if size == 0 {
		return
	}
	if m.pages == nil {
		m.pages = make(map[uint32][]byte)
	}
	first := addr / PageSize
	last := (addr + size - 1) / PageSize
	for pn := first; ; pn++ {
		if _, ok := m.pages[pn]; !ok {
			m.pages[pn] = make([]byte, PageSize)
		}
		if pn == last {
			break
		}
	}
}

// Mapped reports whether the single byte at addr is mapped.
func (m *Memory) Mapped(addr uint32) bool {
	_, ok := m.pages[addr/PageSize]
	return ok
}

// MappedRange reports whether every byte of [addr, addr+size) is mapped.
func (m *Memory) MappedRange(addr, size uint32) bool {
	if size == 0 {
		return true
	}
	first := addr / PageSize
	last := (addr + size - 1) / PageSize
	for pn := first; ; pn++ {
		if _, ok := m.pages[pn]; !ok {
			return false
		}
		if pn == last {
			break
		}
	}
	return true
}

// page returns the page containing addr, or nil if unmapped.
func (m *Memory) page(addr uint32) []byte {
	return m.pages[addr/PageSize]
}

// check validates an access and returns the exception code it raises,
// or isa.ExcCodeNone. Longword accesses must be 4-aligned; an aligned
// longword never straddles a page.
func (m *Memory) check(addr, size uint32) isa.ExcCode {
	if size == isa.WordSize && addr%isa.WordSize != 0 {
		return isa.ExcCodeMisaligned
	}
	if !m.MappedRange(addr, size) {
		return isa.ExcCodePageFault
	}
	return isa.ExcCodeNone
}

// CheckRead returns the exception code a read of the given size at addr
// would raise, without performing it. Reads and writes fault identically.
func (m *Memory) CheckRead(addr, size uint32) isa.ExcCode { return m.check(addr, size) }

// CheckWrite returns the exception code a write of the given size at
// addr would raise, without performing it.
func (m *Memory) CheckWrite(addr, size uint32) isa.ExcCode { return m.check(addr, size) }

// Read8 reads one byte.
func (m *Memory) Read8(addr uint32) (byte, isa.ExcCode) {
	if code := m.check(addr, 1); code != isa.ExcCodeNone {
		return 0, code
	}
	return m.page(addr)[addr%PageSize], isa.ExcCodeNone
}

// Write8 writes one byte.
func (m *Memory) Write8(addr uint32, v byte) isa.ExcCode {
	if code := m.check(addr, 1); code != isa.ExcCodeNone {
		return code
	}
	m.page(addr)[addr%PageSize] = v
	return isa.ExcCodeNone
}

// Read32 reads an aligned little-endian longword.
func (m *Memory) Read32(addr uint32) (uint32, isa.ExcCode) {
	if code := m.check(addr, isa.WordSize); code != isa.ExcCodeNone {
		return 0, code
	}
	pg := m.page(addr)
	off := addr % PageSize
	return uint32(pg[off]) | uint32(pg[off+1])<<8 | uint32(pg[off+2])<<16 | uint32(pg[off+3])<<24, isa.ExcCodeNone
}

// Write32 writes an aligned little-endian longword.
func (m *Memory) Write32(addr uint32, v uint32) isa.ExcCode {
	if code := m.check(addr, isa.WordSize); code != isa.ExcCodeNone {
		return code
	}
	pg := m.page(addr)
	off := addr % PageSize
	pg[off] = byte(v)
	pg[off+1] = byte(v >> 8)
	pg[off+2] = byte(v >> 16)
	pg[off+3] = byte(v >> 24)
	return isa.ExcCodeNone
}

// ReadMasked reads the aligned longword containing addr and returns it;
// used by the difference buffers, which operate on whole longwords with
// byte masks as in the paper's buffer entry format.
func (m *Memory) ReadMasked(addr uint32) (uint32, isa.ExcCode) {
	return m.Read32(addr &^ 3)
}

// WriteMasked writes the bytes of v selected by mask (bit i covers byte
// i) into the aligned longword containing addr.
func (m *Memory) WriteMasked(addr uint32, v uint32, mask uint8) isa.ExcCode {
	base := addr &^ 3
	old, code := m.Read32(base)
	if code != isa.ExcCodeNone {
		return code
	}
	merged := MergeMasked(old, v, mask)
	return m.Write32(base, merged)
}

// MergeMasked overlays the bytes of v selected by mask onto old.
func MergeMasked(old, v uint32, mask uint8) uint32 {
	out := old
	for i := 0; i < isa.WordSize; i++ {
		if mask&(1<<i) != 0 {
			shift := uint(8 * i)
			out = out&^(0xff<<shift) | v&(0xff<<shift)
		}
	}
	return out
}

// MappedPages returns the sorted list of mapped page numbers.
func (m *Memory) MappedPages() []uint32 {
	pns := make([]uint32, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	return pns
}

// Equal reports whether two memories have identical mapped pages with
// identical contents.
func (m *Memory) Equal(o *Memory) bool {
	if len(m.pages) != len(o.pages) {
		return false
	}
	for pn, pg := range m.pages {
		opg, ok := o.pages[pn]
		if !ok {
			return false
		}
		for i := range pg {
			if pg[i] != opg[i] {
				return false
			}
		}
	}
	return true
}

// Diff returns a human-readable description of the first difference
// between two memories, or "" if they are equal. Intended for test
// failure messages.
func (m *Memory) Diff(o *Memory) string {
	seen := make(map[uint32]bool)
	for pn := range m.pages {
		seen[pn] = true
		opg, ok := o.pages[pn]
		if !ok {
			return fmt.Sprintf("page %#x mapped only on left", pn)
		}
		pg := m.pages[pn]
		for i := range pg {
			if pg[i] != opg[i] {
				return fmt.Sprintf("byte %#x: %#x vs %#x", pn*PageSize+uint32(i), pg[i], opg[i])
			}
		}
	}
	for pn := range o.pages {
		if !seen[pn] {
			return fmt.Sprintf("page %#x mapped only on right", pn)
		}
	}
	return ""
}
