package machine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/prog"
	"repro/internal/workload"
)

// Behavioural and timing tests: beyond architectural correctness, the
// machine must exhibit the pipeline effects the experiments rely on.

func mustAsm(t *testing.T, src string) *prog.Program {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func tightCfg() Config {
	return Config{
		Scheme:    core.NewSchemeTight(4, 0),
		Predictor: bpred.NewBimodal(256),
		Speculate: true,
		MemSystem: MemBackward3b,
	}
}

func TestDependenceChainSerializes(t *testing.T) {
	// A chain of dependent adds cannot beat 1 IPC; independent adds can.
	chain := mustAsm(t, `
    addi r1, r0, 1
    add  r1, r1, r1
    add  r1, r1, r1
    add  r1, r1, r1
    add  r1, r1, r1
    add  r1, r1, r1
    add  r1, r1, r1
    halt
`)
	indep := mustAsm(t, `
    addi r1, r0, 1
    add  r2, r1, r1
    add  r3, r1, r1
    add  r4, r1, r1
    add  r5, r1, r1
    add  r6, r1, r1
    add  r7, r1, r1
    halt
`)
	rc, err := Run(chain, tightCfg())
	if err != nil {
		t.Fatal(err)
	}
	ri, err := Run(indep, tightCfg())
	if err != nil {
		t.Fatal(err)
	}
	if ri.Stats.Cycles >= rc.Stats.Cycles {
		t.Errorf("independent ops (%d cycles) not faster than chain (%d)", ri.Stats.Cycles, rc.Stats.Cycles)
	}
}

func TestCacheMissCostsCycles(t *testing.T) {
	// The same load stream with a huge vs tiny cache: the tiny cache
	// must cost more cycles (misses at 8 cycles vs hits at 1).
	p, _ := workload.ByName("sieve")
	big := tightCfg()
	big.Cache = cache.Config{Sets: 256, Ways: 4, LineBytes: 16, Policy: cache.WriteBack}
	small := tightCfg()
	small.Cache = cache.Config{Sets: 1, Ways: 1, LineBytes: 16, Policy: cache.WriteBack}
	rb, err := Run(p.Load(), big)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(p.Load(), small)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Stats.Cycles <= rb.Stats.Cycles {
		t.Errorf("1-line cache (%d cycles) not slower than big cache (%d)", rs.Stats.Cycles, rb.Stats.Cycles)
	}
	if rs.Cache.Misses <= rb.Cache.Misses {
		t.Errorf("miss counts: small %d, big %d", rs.Cache.Misses, rb.Cache.Misses)
	}
}

func TestIssueWidthMatters(t *testing.T) {
	p, _ := workload.ByName("matmul")
	narrow := tightCfg()
	narrow.Timing = DefaultTiming
	narrow.Timing.IssueWidth = 1
	wide := tightCfg()
	wide.Timing = DefaultTiming
	wide.Timing.IssueWidth = 4
	wide.Timing.CDBWidth = 4
	wide.Timing.ALUUnits = 4
	rn, err := Run(p.Load(), narrow)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Run(p.Load(), wide)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Stats.Cycles >= rn.Stats.Cycles {
		t.Errorf("4-wide (%d) not faster than 1-wide (%d)", rw.Stats.Cycles, rn.Stats.Cycles)
	}
}

func TestJRStallsAndResolves(t *testing.T) {
	p := mustAsm(t, `
    addi r1, r0, target
    jalr r2, r1
    halt
target:
    addi r3, r0, 7
    jr   r2
`)
	res, err := Run(p, tightCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[3] != 7 {
		t.Errorf("r3 = %d", res.Regs[3])
	}
	if res.Stats.StallCycles[4] == 0 { // StallJump
		t.Error("indirect jumps should have stalled fetch")
	}
}

func TestWrongPathIsReal(t *testing.T) {
	// With a deliberately wrong predictor, the machine must issue
	// wrong-path work and squash it.
	p, _ := workload.ByName("fib")
	cfg := tightCfg()
	cfg.Predictor = bpred.NewNotTaken() // the fib loop branch is mostly taken
	res, err := Run(p.Load(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WrongPath == 0 {
		t.Error("expected wrong-path issues under an anti-predictor")
	}
	if res.Stats.BRepairs == 0 {
		t.Error("expected B-repairs")
	}
	if res.Stats.Issued <= res.Stats.Retired {
		t.Errorf("issued %d should exceed retired %d", res.Stats.Issued, res.Stats.Retired)
	}
}

func TestOracleVsAntiPredictorCycles(t *testing.T) {
	p, _ := workload.ByName("bubble")
	anti := tightCfg()
	anti.Predictor = bpred.NewNotTaken()
	ra, err := Run(p.Load(), anti)
	if err != nil {
		t.Fatal(err)
	}
	orc := tightCfg()
	orc.Predictor = bpred.NewOracle()
	ro, err := Run(p.Load(), orc)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Stats.Cycles >= ra.Stats.Cycles {
		t.Errorf("oracle (%d) not faster than anti-predictor (%d)", ro.Stats.Cycles, ra.Stats.Cycles)
	}
}

func TestUndersizedBufferDeadlockDetected(t *testing.T) {
	// A 2-entry backward difference under a store-heavy segment cannot
	// make progress; the watchdog must turn that into an error, not a
	// hang.
	p := mustAsm(t, `
    addi r1, r0, 0x1000
    sw r0, 0(r1)
    sw r0, 4(r1)
    sw r0, 8(r1)
    sw r0, 12(r1)
    sw r0, 16(r1)
    sw r0, 20(r1)
    halt
.data 0x1000
buf: .space 64
`)
	cfg := Config{
		Scheme:         core.NewSchemeE(2, 1000, 0), // no W limit, no checkpoints
		Speculate:      false,
		MemSystem:      MemBackward3a,
		BufferCap:      2,
		WatchdogCycles: 2000,
	}
	_, err := Run(p, cfg)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("expected deadlock error, got %v", err)
	}
}

func TestStallAccountingCoversCycles(t *testing.T) {
	p, _ := workload.ByName("listsum")
	res, err := Run(p.Load(), tightCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StallTotal() == 0 {
		t.Error("pointer chase should stall the front end sometimes")
	}
	if res.Stats.StallTotal() >= res.Stats.Cycles {
		t.Errorf("stalls %d exceed cycles %d", res.Stats.StallTotal(), res.Stats.Cycles)
	}
}

func TestConfigValidation(t *testing.T) {
	p, _ := workload.ByName("fib")
	if _, err := Run(p.Load(), Config{}); err == nil {
		t.Error("nil scheme accepted")
	}
	if _, err := Run(p.Load(), Config{Scheme: core.NewSchemeTight(2, 0), Speculate: true}); err == nil {
		t.Error("speculation without predictor accepted")
	}
	if _, err := Run(p.Load(), Config{Scheme: core.NewSchemeTight(2, 0), Speculate: false}); err == nil {
		t.Error("non-speculative tight scheme accepted (branch checkpoints need successor PCs)")
	}
}

func TestMaxCyclesLimit(t *testing.T) {
	p := mustAsm(t, `
loop: j loop
`)
	cfg := tightCfg()
	cfg.MaxCycles = 500
	cfg.WatchdogCycles = 10_000
	_, err := Run(p, cfg)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("expected cycle-limit error, got %v", err)
	}
}

func TestPreciseBudgetSmallStillCorrect(t *testing.T) {
	// A tiny precise budget forces many repair/exit rounds; correctness
	// must be unaffected (only speed).
	for _, k := range []string{"pagedemo", "divzero"} {
		p, _ := workload.ByName(k)
		cfg := tightCfg()
		cfg.PreciseBudget = 2
		runBoth(t, p.Load(), cfg)
	}
}

func TestLatencyJitterChangesTimingNotState(t *testing.T) {
	p, _ := workload.ByName("crc")
	base := tightCfg()
	r1, err := Run(p.Load(), base)
	if err != nil {
		t.Fatal(err)
	}
	jit := tightCfg()
	jit.Timing = DefaultTiming
	jit.Timing.ExtraLatency = func(seq uint64) int { return int(seq % 7) }
	r2, err := Run(p.Load(), jit)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.Cycles <= r1.Stats.Cycles {
		t.Errorf("jitter did not slow the machine (%d vs %d)", r2.Stats.Cycles, r1.Stats.Cycles)
	}
	for i := 1; i < 32; i++ {
		if r1.Regs[i] != r2.Regs[i] {
			t.Fatalf("jitter changed architectural state at r%d", i)
		}
	}
}

func TestShadowRetiredMatchesReference(t *testing.T) {
	// After a full run with exceptions, the shadow must have reached the
	// architectural end and its retirement count must match refsim's.
	for _, k := range []string{"pagedemo", "divzero", "bubble"} {
		p, _ := workload.ByName(k)
		pl := p.Load()
		res, err := Run(pl, tightCfg())
		if err != nil {
			t.Fatal(err)
		}
		if !res.ShadowHalted {
			t.Errorf("%s: shadow did not halt (alignment lost)", k)
			continue
		}
	}
}

// TestVectorIncrK: a vector instruction contributes Ops() operations to
// the issue stream and the scheme bookkeeping — the paper's incr(k).
func TestVectorIncrK(t *testing.T) {
	p, _ := workload.ByName("vecadd")
	cfg := tightCfg()
	cfg.Predictor = bpred.NewOracle()
	res, err := Run(p.Load(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// vecadd: prologue 4 + 8 iterations x (4 vector + 4 scalar + branch)
	// + halt. Retired counts instructions; Issued counts operations
	// (oracle: no wrong-path noise), so Issued - Retired = 8 iters x 4
	// vector instructions x (VectorLen-1) extra ops = 96.
	extra := res.Stats.Issued - res.Stats.Retired
	if extra != 96 {
		t.Errorf("vector op expansion: issued-retired = %d, want 96", extra)
	}
	if !res.ShadowHalted {
		t.Error("alignment lost on vector kernel")
	}
}

// TestVectorMidFaultPrecise: the vecfault kernel faults at element 2 of
// a vector store; repair and single-step must produce the exact
// architectural exception and final state under every memory system.
func TestVectorMidFaultPrecise(t *testing.T) {
	p, _ := workload.ByName("vecfault")
	for _, ms := range []MemSystemKind{MemBackward3a, MemBackward3b, MemForward} {
		t.Run(ms.String(), func(t *testing.T) {
			cfg := tightCfg()
			cfg.MemSystem = ms
			runBoth(t, p.Load(), cfg)
		})
	}
}

// TestVectorWithWriteLimit: a vector store's four operations interact
// with the per-segment write limit W; a forced checkpoint may land at
// the instruction's own PC, and re-execution from it is idempotent.
func TestVectorWithWriteLimit(t *testing.T) {
	p, _ := workload.ByName("vecadd")
	cfg := Config{
		Scheme:    core.NewSchemeE(4, 16, 2), // W=2 < VectorLen
		Speculate: false,
		MemSystem: MemBackward3a,
	}
	runBoth(t, p.Load(), cfg)
}

// TestVectorSquashMidCrack: a mispredicted branch resolves while a
// wrong-path vector instruction is partially cracked; the repair must
// abandon the remaining micro-ops and restore state exactly.
func TestVectorSquashMidCrack(t *testing.T) {
	// The div makes the branch resolve slowly; the anti-predictor sends
	// fetch into the wrong path, which is packed with vector ops so a
	// crack is in flight whenever the repair fires.
	p := mustAsm(t, `
    addi r1, r0, 40
    addi r2, r0, 7
    addi r3, r0, vbuf
    div  r4, r1, r2        ; slow producer
    beq  r4, r0, wrong     ; actually not taken (r4=5)
    addi r5, r0, 1
    j    done
wrong:
    vlw  r8, 0(r3)         ; wrong path: vector work to squash
    vadd r16, r8, r8
    vsw  r16, 16(r3)
    vlw  r20, 0(r3)
    addi r5, r0, 2
done:
    sw   r5, vres(r0)
    halt
.data 0x1000
vbuf: .word 1, 2, 3, 4
      .space 48
vres: .word 0
`)
	cfg := Config{
		Scheme:    core.NewSchemeTight(4, 0),
		Predictor: bpred.NewTaken(), // forces the wrong path at beq
		Speculate: true,
		MemSystem: MemBackward3b,
	}
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BRepairs == 0 || res.Stats.WrongPath == 0 {
		t.Fatalf("scenario did not exercise a wrong-path squash (brep=%d wrong=%d)",
			res.Stats.BRepairs, res.Stats.WrongPath)
	}
	runBoth(t, p, Config{
		Scheme:    core.NewSchemeTight(4, 0),
		Predictor: bpred.NewTaken(),
		Speculate: true,
		MemSystem: MemBackward3b,
	})
	// And under forward differences.
	runBoth(t, p, Config{
		Scheme:    core.NewSchemeTight(4, 0),
		Predictor: bpred.NewTaken(),
		Speculate: true,
		MemSystem: MemForward,
	})
}

// TestForwardingMakesDependentLoadsFast: under the forward difference a
// dependent load is served from the buffer (a hit) even when the line
// is cold, while the backward difference pays the miss on the store.
func TestForwardingMakesDependentLoadsFast(t *testing.T) {
	src := `
    addi r1, r0, 0x1000
    addi r2, r0, 42
    sw   r2, 0(r1)
    lw   r3, 0(r1)
    sw   r3, 0x2000(r0)
    halt
.data 0x1000
a: .space 16
.data 0x2000
b: .space 16
`
	p := mustAsm(t, src)
	run := func(ms MemSystemKind) *Result {
		cfg := Config{
			Scheme:    core.NewSchemeE(2, 8, 0),
			Speculate: false,
			MemSystem: ms,
		}
		res, err := Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Regs[3] != 42 {
			t.Fatalf("%v: r3 = %d", ms, res.Regs[3])
		}
		return res
	}
	fd := run(MemForward)
	bd := run(MemBackward3b)
	// The forward system defers the store, so the cold-line miss cost
	// moves off the critical path (the load forwards).
	if fd.Stats.Cycles > bd.Stats.Cycles {
		t.Errorf("forward (%d cycles) slower than backward (%d) on store-load pair", fd.Stats.Cycles, bd.Stats.Cycles)
	}
}

// TestCDBWidthContention: with one result bus, independent ops serialise
// at writeback; widening the bus shortens the run.
func TestCDBWidthContention(t *testing.T) {
	p, _ := workload.ByName("matmul")
	narrow := tightCfg()
	narrow.Timing = DefaultTiming
	narrow.Timing.IssueWidth = 4
	narrow.Timing.ALUUnits = 4
	narrow.Timing.CDBWidth = 1
	wide := narrow
	wide.Timing.CDBWidth = 4
	rn, err := Run(p.Load(), narrow)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Run(p.Load(), wide)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Stats.Cycles >= rn.Stats.Cycles {
		t.Errorf("CDB=4 (%d cycles) not faster than CDB=1 (%d)", rw.Stats.Cycles, rn.Stats.Cycles)
	}
}

// TestTraceEmitsRepairEvents: the Trace hook reports B-misses and
// E-repair transitions.
func TestTraceEmitsRepairEvents(t *testing.T) {
	var events []string
	k, _ := workload.ByName("pagedemo")
	cfg := tightCfg()
	cfg.Trace = func(f string, a ...any) { events = append(events, fmt.Sprintf(f, a...)) }
	if _, err := Run(k.Load(), cfg); err != nil {
		t.Fatal(err)
	}
	var sawPrecise, sawExc bool
	for _, e := range events {
		if strings.Contains(e, "precise mode") {
			sawPrecise = true
		}
		if strings.Contains(e, "page-fault") {
			sawExc = true
		}
	}
	if !sawPrecise || !sawExc {
		t.Errorf("trace missing events (precise=%v exc=%v, %d lines)", sawPrecise, sawExc, len(events))
	}
}

// TestNonZeroEntryPoint: the machine honours .entry.
func TestNonZeroEntryPoint(t *testing.T) {
	p := mustAsm(t, `
helper:
    addi r9, r0, 99
    jr   r31
main:
    jal  r31, helper
    addi r1, r9, 1
    halt
.entry main
`)
	cfg := tightCfg()
	runBoth(t, p, cfg)
	res, _ := Run(p, cfg)
	if res.Regs[1] != 100 {
		t.Errorf("r1 = %d", res.Regs[1])
	}
}
