package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func key(i int) string { return fmt.Sprintf("k%04d", i) }

func TestRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	val := []byte("the result bytes")
	s.Put("abc123", val, time.Second)
	if got, ok := s.Get("abc123"); !ok || !bytes.Equal(got, val) {
		t.Fatalf("memory-tier Get = %q, %v", got, ok)
	}
	if st := s.Stats(); st.MemHits != 1 || st.DiskWrites != 1 {
		t.Fatalf("stats after put+get: %+v", st)
	}

	// A fresh store over the same directory (a daemon restart) must
	// serve the entry from disk, byte-identical.
	s2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("abc123")
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("disk-tier Get after reopen = %q, %v", got, ok)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.Corrupt != 0 {
		t.Fatalf("reopen stats: %+v", st)
	}
	// The disk hit is promoted: the second Get is a memory hit.
	if _, ok := s2.Get("abc123"); !ok {
		t.Fatal("promoted entry missed")
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Fatalf("promotion stats: %+v", st)
	}
}

func TestMissCounts(t *testing.T) {
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("hit on empty store")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMinCostSkipsDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, MinCost: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("cheap", []byte("x"), time.Millisecond)      // below threshold
	s.Put("costly", []byte("y"), 20*time.Millisecond)  // above
	s.Put("progress", []byte("z"), Durable)            // forced durable
	if st := s.Stats(); st.DiskSkipped != 1 || st.DiskWrites != 2 {
		t.Fatalf("stats: %+v", st)
	}
	s2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("cheap"); ok {
		t.Fatal("cheap entry survived restart; should have been memory-only")
	}
	for _, k := range []string{"costly", "progress"} {
		if _, ok := s2.Get(k); !ok {
			t.Fatalf("%s entry did not survive restart", k)
		}
	}
}

func TestMemoryLRUBounds(t *testing.T) {
	s, err := Open(Config{MemEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		s.Put(key(i), []byte{byte(i)}, 0)
	}
	st := s.Stats()
	if st.MemEntries != 4 || st.MemEvictions != 4 {
		t.Fatalf("entry bound: %+v", st)
	}
	// Oldest four evicted, newest four present.
	for i := 0; i < 4; i++ {
		if _, ok := s.Get(key(i)); ok {
			t.Fatalf("%s survived eviction", key(i))
		}
	}
	for i := 4; i < 8; i++ {
		if _, ok := s.Get(key(i)); !ok {
			t.Fatalf("%s evicted out of order", key(i))
		}
	}

	// Byte bound, and recency: touching an entry saves it.
	s, err = Open(Config{MemEntries: 100, MemBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s.Put(key(i), make([]byte, 40), 0) // 120 B > 100 B: k0 evicted
	}
	if _, ok := s.Get(key(0)); ok {
		t.Fatal("byte bound not enforced")
	}
	s.Get(key(1)) // refresh k1
	s.Put(key(3), make([]byte, 40), 0)
	if _, ok := s.Get(key(1)); !ok {
		t.Fatal("recently used entry evicted before older one")
	}
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("least recently used entry survived")
	}
}

func TestDiskLRUBound(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, DiskBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Put(key(i), make([]byte, 40), time.Second)
		// Distinct mtimes so LRU order is unambiguous on coarse clocks.
		os.Chtimes(filepath.Join(dir, key(i)+diskSuffix), time.Time{},
			time.Now().Add(time.Duration(i-10)*time.Hour))
		s.disk.index[key(i)].lastUse = time.Now().Add(time.Duration(i-10) * time.Hour)
	}
	s.Put(key(5), make([]byte, 40), time.Second)
	st := s.Stats()
	if st.DiskBytes > 100 {
		t.Fatalf("disk byte bound not enforced: %+v", st)
	}
	if st.DiskEvictions == 0 {
		t.Fatalf("no disk evictions recorded: %+v", st)
	}
	// The oldest entries are the ones gone from disk.
	s2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(key(0)); ok {
		t.Fatal("oldest disk entry survived byte-bound eviction")
	}
	if _, ok := s2.Get(key(5)); !ok {
		t.Fatal("newest disk entry evicted")
	}
}

func TestDiskAgeBound(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("old", []byte("o"), time.Second)
	s.Put("new", []byte("n"), time.Second)
	old := filepath.Join(dir, "old"+diskSuffix)
	if err := os.Chtimes(old, time.Time{}, time.Now().Add(-48*time.Hour)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{Dir: dir, MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("old"); ok {
		t.Fatal("stale entry survived the age bound")
	}
	if _, ok := s2.Get("new"); !ok {
		t.Fatal("fresh entry evicted by the age bound")
	}
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Fatal("stale entry's file not removed")
	}
}

// corruptions maps a test name to a mutation of the on-disk entry.
var corruptions = map[string]func(path string, t *testing.T){
	"truncated": func(path string, t *testing.T) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
			t.Fatal(err)
		}
	},
	"bit-flipped": func(path string, t *testing.T) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0x40 // payload bit
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	},
	"header-smashed": func(path string, t *testing.T) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[0] ^= 0xff // magic
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	},
	"emptied": func(path string, t *testing.T) {
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	},
}

func TestCorruptEntriesDetectedAndEvicted(t *testing.T) {
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			s.Put("victim", []byte("precious result bytes"), time.Second)
			corrupt(filepath.Join(dir, "victim"+diskSuffix), t)

			// A fresh store (no memory copy) must detect, miss, delete.
			s2, err := Open(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := s2.Get("victim"); ok {
				t.Fatal("corrupt entry served")
			}
			st := s2.Stats()
			if st.Corrupt != 1 || st.Misses != 1 {
				t.Fatalf("stats: %+v", st)
			}
			if _, err := os.Stat(filepath.Join(dir, "victim"+diskSuffix)); !os.IsNotExist(err) {
				t.Fatal("corrupt entry's file not deleted")
			}
			// The caller recomputes and re-stores; the entry is whole again.
			s2.Put("victim", []byte("recomputed"), time.Second)
			s3, err := Open(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if got, ok := s3.Get("victim"); !ok || string(got) != "recomputed" {
				t.Fatalf("recomputed entry = %q, %v", got, ok)
			}
		})
	}
}

// TestConcurrentWriteRead hammers one key from concurrent writers and
// readers (plus a writer pair racing on rename): under -race this must
// be clean, and every read must observe one complete, verified value.
func TestConcurrentWriteRead(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([][]byte, 8)
	for i := range vals {
		vals[i] = bytes.Repeat([]byte{byte('a' + i)}, 100+i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Put("hot", vals[(w+i)%len(vals)], time.Second)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, ok := s.Get("hot")
				if !ok {
					continue
				}
				valid := false
				for _, v := range vals {
					if bytes.Equal(got, v) {
						valid = true
						break
					}
				}
				if !valid {
					t.Errorf("read a torn value: %q", got)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Corrupt != 0 {
		t.Fatalf("corruption under concurrency: %+v", st)
	}
}

func TestDeleteRemovesBothTiers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("gone", []byte("g"), time.Second)
	s.Delete("gone")
	if _, ok := s.Get("gone"); ok {
		t.Fatal("deleted entry served from memory")
	}
	s2, _ := Open(Config{Dir: dir})
	if _, ok := s2.Get("gone"); ok {
		t.Fatal("deleted entry served from disk")
	}
}

func TestInvalidKeyPanics(t *testing.T) {
	s, _ := Open(Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on path-traversal key")
		}
	}()
	s.Put("../escape", []byte("x"), 0)
}
