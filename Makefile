# Developer entry points. CI runs `make ci`.

GO ?= go

.PHONY: build vet test race fastpath bench experiments faultcamp profile ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# Race-check the concurrency-sensitive surface: the parallel experiment
# engine, the whole-machine golden tests it drives, the memoized
# workload loaders shared across workers, and the fault-injection
# campaign fan-out (16 concurrent injected machines).
race:
	$(GO) test -race ./internal/experiments/ ./internal/machine/ ./internal/workload/ ./internal/fault/

# Fast-path equivalence: cycle skipping and trace replay must change
# nothing observable (full-result diffs and byte-identical artefacts).
fastpath:
	$(GO) test -run 'FastPath|CycleSkip|Replay' ./internal/machine/ ./internal/experiments/ ./internal/refsim/

# Regenerate the BENCH_<n>.json perf record (see README "Performance").
bench:
	$(GO) run ./cmd/bench

# Profile the benchmark suite; inspect with `go tool pprof cpu.out`.
profile:
	$(GO) run ./cmd/bench -benchtime 200ms -o /dev/null -cpuprofile cpu.out -memprofile mem.out

experiments:
	$(GO) run ./cmd/experiments

# Run the default fault-injection campaign (see README
# "Fault-injection campaigns"). Exits non-zero if any covered-class
# injection escapes repair.
faultcamp:
	$(GO) run ./cmd/faultcamp

ci: vet test fastpath race
