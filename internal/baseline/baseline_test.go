package baseline

import (
	"testing"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/refsim"
	"repro/internal/workload"
)

func TestInOrderMatchesReference(t *testing.T) {
	for _, k := range workload.Kernels() {
		p := k.Load()
		ref, err := refsim.Run(p, refsim.Options{})
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		res, err := InOrder(p, machine.DefaultTiming, cache.DefaultConfig)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if !res.Halted {
			t.Errorf("%s: not halted", k.Name)
		}
		for i := 1; i < 32; i++ {
			if res.Regs[i] != ref.Regs[i] {
				t.Errorf("%s: r%d differs", k.Name, i)
				break
			}
		}
		if res.Cycles < res.Retired {
			t.Errorf("%s: cycles %d < retired %d (in-order IPC cannot exceed 1)", k.Name, res.Cycles, res.Retired)
		}
		if res.Retired != int64(ref.Retired) {
			t.Errorf("%s: retired %d != %d", k.Name, res.Retired, ref.Retired)
		}
	}
}

func TestBufferConfigsMatchGolden(t *testing.T) {
	for _, k := range workload.Kernels() {
		p := k.Load()
		ref, _ := refsim.Run(p, refsim.Options{})
		for name, cfg := range map[string]machine.Config{
			"history": HistoryBufferConfig(8),
			"reorder": ReorderBufferConfig(8),
		} {
			res, err := machine.Run(p, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", k.Name, name, err)
			}
			if err := res.MatchRef(ref); err != nil {
				t.Errorf("%s/%s: %v", k.Name, name, err)
			}
		}
	}
}

// TestCheckpointRepairBeatsInOrder establishes the headline shape: on a
// branchy workload, the speculative checkpoint-repair machine retires
// instructions faster than both the in-order baseline and the
// non-speculative per-instruction-checkpoint (reorder-buffer) machine.
func TestCheckpointRepairBeatsInOrder(t *testing.T) {
	k, _ := workload.ByName("bubble")
	p := k.Load()

	inord, err := InOrder(p, machine.DefaultTiming, cache.DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}

	rob, err := machine.Run(p, ReorderBufferConfig(8))
	if err != nil {
		t.Fatal(err)
	}

	ckpt, err := machine.Run(p, machine.Config{
		Scheme:    core.NewSchemeTight(4, 0),
		Predictor: bpred.NewBimodal(256),
		Speculate: true,
		MemSystem: machine.MemBackward3b,
	})
	if err != nil {
		t.Fatal(err)
	}

	if ckpt.Stats.Cycles >= inord.Cycles {
		t.Errorf("checkpoint repair (%d cycles) not faster than in-order (%d)", ckpt.Stats.Cycles, inord.Cycles)
	}
	if ckpt.Stats.Cycles >= rob.Stats.Cycles {
		t.Errorf("checkpoint repair (%d cycles) not faster than non-speculative ROB (%d)", ckpt.Stats.Cycles, rob.Stats.Cycles)
	}
}
