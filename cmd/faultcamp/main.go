// Command faultcamp runs seeded fault-injection campaigns against the
// schemeE checkpoint-repair machine (see the internal/fault package doc
// and the "Fault-injection campaigns" sections of README.md and
// EXPERIMENTS.md).
//
// Usage:
//
//	faultcamp                          # default campaign over kernel workloads
//	faultcamp -w fib,divzero           # choose workloads
//	faultcamp -models fu-detected,spurious-exc
//	faultcamp -seed 7 -stride 2 -j 1   # deterministic at every -j value
//	faultcamp -v                       # per-injection detail for non-clean outcomes
//	faultcamp -store-dir /tmp/fc       # checkpoint progress; Ctrl-C is recoverable
//	faultcamp -store-dir /tmp/fc -resume   # continue a killed campaign
//
// Output is deterministic for a given (workloads, models, seed, stride)
// tuple at any worker count — including across a kill and -resume, whose
// outcome table is byte-identical to an uninterrupted run's.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/store"
	"repro/internal/workload"
)

// defaultWorkloads keeps the out-of-the-box run quick but representative:
// a scalar loop, a store-heavy byte loop, a load-use chain, and the
// exception-heavy kernels that mix injected faults with architectural
// repairs.
var defaultWorkloads = []string{"fib", "memcpy", "dotprod", "listsum", "divzero", "vecfault"}

// maxDefaultRuns bounds the per-workload executed-injection count when
// the user didn't pick a stride; the planner's event axis scales with
// program length, so long kernels get a proportionally larger stride.
const maxDefaultRuns = 600

func main() {
	seed := flag.Int64("seed", 1987, "campaign seed (drives every corruption bit)")
	wl := flag.String("w", strings.Join(defaultWorkloads, ","), "comma-separated kernel workloads")
	modelsFlag := flag.String("models", "", "comma-separated fault models (default all: reg-flip,mem-flip,fu-corrupt,fu-detected,spurious-exc)")
	stride := flag.Int("stride", 0, "inject at every Nth eligible event (0 = auto-size per workload)")
	jobs := flag.Int("j", 0, "max concurrent injected runs (0 = GOMAXPROCS, 1 = sequential)")
	distance := flag.Int("d", 8, "schemeE checkpoint distance (instructions per interval)")
	verbose := flag.Bool("v", false, "list every non-masked injection outcome")
	storeDir := flag.String("store-dir", "", "checkpoint campaign progress under this directory (a killed campaign becomes resumable)")
	resume := flag.Bool("resume", false, "resume campaigns from progress records in -store-dir instead of starting over")
	ckptEvery := flag.Int("ckpt-every", 64, "save progress every N completed injections (with -store-dir)")
	version := buildinfo.Flag()
	flag.Parse()
	version()

	models, err := parseModels(*modelsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *resume && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "faultcamp: -resume requires -store-dir (there is nowhere to resume from)")
		os.Exit(1)
	}
	var st *store.Store
	if *storeDir != "" {
		st, err = store.Open(store.Config{Dir: *storeDir})
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultcamp: open store: %v\n", err)
			os.Exit(1)
		}
	}

	// Ctrl-C cancels the campaign fan-out after in-flight injected runs
	// drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	exit := 0
	for i, name := range strings.Split(*wl, ",") {
		name = strings.TrimSpace(name)
		k, err := workload.ByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		p := k.Load()
		mk := func() machine.Config {
			return machine.Config{
				Scheme:    core.NewSchemeE(4, *distance, 0),
				Speculate: false,
				MemSystem: machine.MemBackward3b,
			}
		}
		cc := fault.Config{Seed: *seed, Models: models, Stride: *stride, Workers: *jobs}
		if cc.Stride <= 0 {
			cc.Stride = autoStride(p.Name, mk, cc)
		}
		var key string
		if st != nil {
			// The progress key is content-addressed over every parameter
			// that shapes the plan (including the resolved auto stride), so
			// a resume with different flags can never splice in a foreign
			// record — and fault.Run's plan fingerprint re-checks anyway.
			key = campaignKey(name, *distance, cc)
			if !*resume {
				st.Delete(key) // fresh run: discard any stale record
			}
			cc.Ckpt = &storeCkpt{st: st, key: key}
			cc.CkptEvery = *ckptEvery
		}
		rep, err := fault.Run(ctx, p, mk, cc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultcamp: %s: %v\n", name, err)
			if st != nil && ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "faultcamp: progress saved; continue with -store-dir %s -resume\n", *storeDir)
			}
			os.Exit(1)
		}
		if len(rep.Plan.Exec) == 0 {
			fmt.Fprintf(os.Stderr,
				"faultcamp: %s: plan yields no injections (stride %d over %d events, models %s) — lower -stride or widen -models\n",
				name, cc.Stride, rep.Events, modelNames(rep.Models))
			os.Exit(1)
		}
		if st != nil {
			st.Delete(key) // campaign completed: the record is spent
		}
		if rep.Resumed > 0 {
			fmt.Printf("resumed %d of %d injections from %s\n", rep.Resumed, len(rep.Plan.Exec), *storeDir)
		}
		fmt.Println(rep.Table(fmt.Sprintf("FC%d", i+1)).String())
		if *verbose {
			for _, r := range rep.Results {
				if r.Outcome == fault.Masked {
					continue
				}
				fmt.Printf("   %-28s -> %-8s fired=%v repairs=+%d latency=%d  %s\n",
					r.Inj, r.Outcome, r.Fired, r.RepairDelta, r.Latency, r.Detail)
			}
			fmt.Println()
		}
		if bad := rep.CoveredBad(); len(bad) != 0 {
			fmt.Fprintf(os.Stderr, "faultcamp: %s: %d covered-class injections escaped repair\n", name, len(bad))
			exit = 1
		}
	}
	os.Exit(exit)
}

// storeCkpt adapts the durable tier of a result store to the fault
// package's Checkpointer, mirroring the serving layer's adapter.
type storeCkpt struct {
	st  *store.Store
	key string
}

func (c *storeCkpt) Load() ([]byte, bool) { return c.st.Get(c.key) }
func (c *storeCkpt) Save(b []byte) error {
	c.st.Put(c.key, b, store.Durable)
	return nil
}

// campaignKey is the content address of one workload's progress record:
// a hash of every campaign parameter that shapes the executed plan.
func campaignKey(name string, distance int, cc fault.Config) string {
	models := cc.Models
	if models == nil {
		models = fault.Models()
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s|%d|%d|%d|%d", name, cc.Seed, cc.Stride, distance, cc.MaxWords)
	for _, m := range models {
		fmt.Fprintf(h, "|%s", m)
	}
	return "camp-" + hex.EncodeToString(h.Sum(nil))
}

func modelNames(models []fault.Model) string {
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.String()
	}
	return strings.Join(names, ",")
}

// autoStride picks the smallest stride keeping the executed-injection
// count under maxDefaultRuns, by planning (cheap — one baseline run,
// which the campaign reuses via the trace cache) at stride 1 first.
func autoStride(name string, mk func() machine.Config, cc fault.Config) int {
	probe := cc
	probe.Stride = 1
	k, err := workload.ByName(name)
	if err != nil {
		return 1
	}
	plan, err := fault.PlanOnly(k.Load(), mk, probe)
	if err != nil {
		return 1
	}
	return plan.Executed()/maxDefaultRuns + 1
}

func parseModels(s string) ([]fault.Model, error) {
	if s == "" {
		return nil, nil
	}
	byName := map[string]fault.Model{}
	for _, m := range fault.Models() {
		byName[m.String()] = m
	}
	var models []fault.Model
	for _, tok := range strings.Split(s, ",") {
		m, ok := byName[strings.TrimSpace(tok)]
		if !ok {
			return nil, fmt.Errorf("faultcamp: unknown model %q (have reg-flip, mem-flip, fu-corrupt, fu-detected, spurious-exc)", tok)
		}
		models = append(models, m)
	}
	return models, nil
}
