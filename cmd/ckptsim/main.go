// Command ckptsim runs a workload on a configurable checkpoint-repair
// machine and reports the run statistics.
//
// Usage examples:
//
//	ckptsim -kernel bubble -scheme tight -c 4
//	ckptsim -kernel pagedemo -scheme loose -ce 2 -cb 4 -dist 12 -mem 3b
//	ckptsim -prog myprog.s -scheme direct -pred gshare -trace
//	ckptsim -kernel sieve -scheme e -c 2 -dist 8 -nospec
//	ckptsim -kernel rv32:crc32 -scheme loose
//	ckptsim -prog internal/rv32/testdata/mix.elf -scheme tight -c 4
//	ckptsim -list
//
// Compiled rv32 images passed via -prog are autodetected (ELF magic,
// or a .bin/.rv32 extension for flat binaries) and translated onto the
// internal ISA; everything else is treated as assembly source.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/asm"
	"repro/internal/bpred"
	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/prog"
	"repro/internal/refsim"
	"repro/internal/rv32"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		kernel   = flag.String("kernel", "", "built-in kernel to run (see -list)")
		progFile = flag.String("prog", "", "assembly file to run instead of a kernel")
		list     = flag.Bool("list", false, "list built-in kernels and exit")
		scheme   = flag.String("scheme", "tight", "repair scheme: e, b, tight, loose, direct")
		c        = flag.Int("c", 4, "backup spaces (schemes e, b, tight)")
		ce       = flag.Int("ce", 2, "E backup spaces (loose, direct)")
		cb       = flag.Int("cb", 4, "B backup spaces (loose, direct)")
		dist     = flag.Int("dist", 16, "instructions between E checkpoints (e, loose, direct)")
		w        = flag.Int("w", 0, "max memory writes per checkpoint range, 0 = unlimited")
		memKind  = flag.String("mem", "3b", "memory system: 3a, 3b, forward")
		bufCap   = flag.Int("bufcap", 0, "difference buffer capacity, 0 = unbounded")
		predName = flag.String("pred", "bimodal", "predictor: nottaken, taken, btfn, bimodal, gshare, oracle, synthetic")
		hit      = flag.Float64("hit", 0.85, "synthetic predictor hit ratio")
		nospec   = flag.Bool("nospec", false, "disable branch speculation (required for -scheme e)")
		check    = flag.Bool("check", true, "verify the result against the reference interpreter")
		traceOn  = flag.Bool("trace", false, "print repair/precise-mode events")
		vizEvery = flag.Int("viz", 0, "render the checkpoint window every N cycles (0 = off)")
		jsonOut  = flag.Bool("json", false, "emit machine statistics as JSON instead of text")
	)
	version := buildinfo.Flag()
	flag.Parse()
	version()

	if *list {
		for _, k := range workload.Kernels() {
			fmt.Printf("%-10s %s\n", k.Name, k.Description)
		}
		for _, name := range workload.RV32Names() {
			fmt.Printf("%-10s compiled rv32 corpus binary\n", name)
		}
		return
	}

	p, err := loadProgram(*kernel, *progFile)
	if err != nil {
		fail(err)
	}

	cfg := machine.Config{Speculate: !*nospec}
	switch *scheme {
	case "e":
		cfg.Scheme = core.NewSchemeE(*c, *dist, *w)
		cfg.Speculate = false
	case "b":
		cfg.Scheme = core.NewSchemeB(*c)
	case "tight":
		cfg.Scheme = core.NewSchemeTight(*c, *w)
	case "loose":
		cfg.Scheme = core.NewSchemeLoose(*ce, *cb, *dist)
	case "direct":
		cfg.Scheme = core.NewSchemeDirect(*ce, *cb, *dist, *w)
	default:
		fail(fmt.Errorf("unknown scheme %q", *scheme))
	}
	switch *memKind {
	case "3a":
		cfg.MemSystem = machine.MemBackward3a
	case "3b":
		cfg.MemSystem = machine.MemBackward3b
	case "forward":
		cfg.MemSystem = machine.MemForward
	default:
		fail(fmt.Errorf("unknown memory system %q", *memKind))
	}
	cfg.BufferCap = *bufCap
	if cfg.Speculate {
		switch *predName {
		case "nottaken":
			cfg.Predictor = bpred.NewNotTaken()
		case "taken":
			cfg.Predictor = bpred.NewTaken()
		case "btfn":
			cfg.Predictor = bpred.NewBTFN()
		case "bimodal":
			cfg.Predictor = bpred.NewBimodal(1024)
		case "gshare":
			cfg.Predictor = bpred.NewGShare(4096, 8)
		case "oracle":
			cfg.Predictor = bpred.NewOracle()
		case "synthetic":
			cfg.Predictor = bpred.NewSynthetic(*hit, 1)
		default:
			fail(fmt.Errorf("unknown predictor %q", *predName))
		}
	}
	if *traceOn {
		cfg.Trace = func(f string, a ...any) { fmt.Printf(f+"\n", a...) }
	}

	var res *machine.Result
	if *vizEvery > 0 {
		m, err := machine.New(p, cfg)
		if err != nil {
			fail(err)
		}
		next := int64(0)
		for m.Step() {
			if m.Cycle() >= next {
				fmt.Print(trace.Render(trace.Capture(
					fmt.Sprintf("cycle %d (%d ops in flight)", m.Cycle(), m.InFlight()), m.Scheme())))
				next = m.Cycle() + int64(*vizEvery)
			}
		}
		res, err = m.Finish()
		if err != nil {
			fail(err)
		}
	} else {
		var err error
		res, err = machine.Run(p, cfg)
		if err != nil {
			fail(err)
		}
	}
	if *jsonOut {
		reportJSON(p, cfg, res)
	} else {
		report(p, cfg, res)
	}

	if *check {
		ref, err := refsim.Run(p, refsim.Options{})
		if err != nil {
			fail(err)
		}
		if err := res.MatchRef(ref); err != nil {
			fail(fmt.Errorf("GOLDEN MISMATCH: %v", err))
		}
		fmt.Println("\ngolden check: machine state matches the reference interpreter")
	}
}

func loadProgram(kernel, progFile string) (*prog.Program, error) {
	switch {
	case progFile != "":
		src, err := os.ReadFile(progFile)
		if err != nil {
			return nil, err
		}
		if isRV32File(progFile, src) {
			return rv32.LoadProgram(progFile, src)
		}
		return asm.Assemble(progFile, string(src))
	case kernel != "":
		k, err := workload.ByName(kernel)
		if err != nil {
			return nil, err
		}
		return k.Load(), nil
	default:
		return nil, fmt.Errorf("specify -kernel or -prog (or -list)")
	}
}

// isRV32File autodetects compiled rv32 images: ELF by magic, flat
// binaries by extension.
func isRV32File(path string, data []byte) bool {
	if rv32.IsELF(data) {
		return true
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".bin", ".rv32":
		return true
	}
	return false
}

// reportJSON emits the run statistics as a single JSON object.
func reportJSON(p *prog.Program, cfg machine.Config, res *machine.Result) {
	type out struct {
		Program      string  `json:"program"`
		Scheme       string  `json:"scheme"`
		Spaces       int     `json:"logicalSpaces"`
		MemSystem    string  `json:"memSystem"`
		Cycles       int64   `json:"cycles"`
		Retired      int64   `json:"retired"`
		IPC          float64 `json:"ipc"`
		Issued       int64   `json:"issuedOps"`
		WrongPath    int64   `json:"wrongPathOps"`
		Precise      int64   `json:"preciseModeOps"`
		BRepairs     int64   `json:"bRepairs"`
		ERepairs     int64   `json:"eRepairs"`
		Checkpoints  int64   `json:"checkpoints"`
		StallTotal   int64   `json:"stallCycles"`
		CacheHits    int     `json:"cacheHits"`
		CacheMisses  int     `json:"cacheMisses"`
		WriteBacks   int     `json:"writeBacks"`
		DiffPushes   int     `json:"diffPushes"`
		DiffMaxOcc   int     `json:"diffMaxOccupancy"`
		Exceptions   int     `json:"exceptionsHandled"`
		PredictorAcc float64 `json:"predictorAccuracy,omitempty"`
	}
	o := out{
		Program: p.Name, Scheme: cfg.Scheme.Name(), Spaces: cfg.Scheme.Spaces(),
		MemSystem: cfg.MemSystem.String(),
		Cycles:    res.Stats.Cycles, Retired: res.Stats.Retired, IPC: res.Stats.IPC(),
		Issued: res.Stats.Issued, WrongPath: res.Stats.WrongPath, Precise: res.Stats.PreciseInsts,
		BRepairs: res.Stats.BRepairs, ERepairs: res.Stats.ERepairs, Checkpoints: res.Stats.Checkpoints,
		StallTotal: res.Stats.StallTotal(),
		CacheHits:  res.Cache.Hits, CacheMisses: res.Cache.Misses, WriteBacks: res.Cache.WriteBacks,
		DiffPushes: int(res.Diff.Pushes), DiffMaxOcc: res.Diff.MaxOccupancy,
		Exceptions: len(res.Exceptions), PredictorAcc: res.PredictorAccuracy,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(o); err != nil {
		fail(err)
	}
}

func report(p *prog.Program, cfg machine.Config, res *machine.Result) {
	fmt.Printf("program:   %s (%d instructions)\n", p.Name, len(p.Code))
	fmt.Printf("scheme:    %s (%d logical spaces)\n", cfg.Scheme.Name(), cfg.Scheme.Spaces())
	fmt.Printf("memory:    %v difference buffer\n", cfg.MemSystem)
	if cfg.Predictor != nil {
		fmt.Printf("predictor: %s (accuracy %.1f%%)\n", cfg.Predictor.Name(), res.PredictorAccuracy*100)
	}
	s := res.Stats
	fmt.Printf("\ncycles:    %d\n", s.Cycles)
	fmt.Printf("retired:   %d (IPC %.3f)\n", s.Retired, s.IPC())
	fmt.Printf("issued:    %d (%d wrong-path, %d precise-mode)\n", s.Issued, s.WrongPath, s.PreciseInsts)
	fmt.Printf("repairs:   %d B-repairs, %d E-repairs, %d checkpoints\n", s.BRepairs, s.ERepairs, s.Checkpoints)
	fmt.Printf("stalls:    %d total\n", s.StallTotal())
	for r := 1; r < stats.NumStallReasons; r++ {
		if s.StallCycles[r] > 0 {
			fmt.Printf("           %-12s %d\n", stats.StallReason(r).String(), s.StallCycles[r])
		}
	}
	fmt.Printf("cache:     %d hits, %d misses, %d write-backs\n", res.Cache.Hits, res.Cache.Misses, res.Cache.WriteBacks)
	fmt.Printf("diff:      %d pushes, max occupancy %d, %d undone, %d discarded\n",
		res.Diff.Pushes, res.Diff.MaxOccupancy, res.Diff.Undone, res.Diff.Discarded)
	fmt.Printf("exceptions:%d handled precisely\n", len(res.Exceptions))
	for _, e := range res.Exceptions {
		fmt.Printf("           %v\n", e)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ckptsim:", err)
	os.Exit(1)
}
