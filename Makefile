# Developer entry points. CI runs `make ci`.

GO ?= go

.PHONY: build vet test race fastpath bench bench-smoke experiments faultcamp profile serve loadtest smoke cluster-smoke session-smoke rv32-smoke clean-store ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# Race-check the concurrency-sensitive surface: the parallel experiment
# engine, the whole-machine golden tests it drives, the memoized
# workload loaders shared across workers (including the rv32 frontend's
# content-hash program cache and all-schemes corpus sweep), the
# fault-injection campaign fan-out (16 concurrent injected machines,
# including kill-and-resume), the serving layer's single-flight cache
# and queue (64 concurrent identical submissions), and the two-tier
# result store (concurrent same-key writers/readers, store round-trip,
# corruption recovery).
race:
	$(GO) test -race ./internal/experiments/ ./internal/machine/ ./internal/workload/ ./internal/rv32/ ./internal/fault/ ./internal/service/ ./internal/session/ ./internal/store/ ./internal/cluster/

# Fast-path equivalence: cycle skipping, trace replay, and the
# batch-lockstep engine must change nothing observable (full-result
# diffs and byte-identical artefacts, including the three-way
# naive/fast/batched RunAll comparison).
fastpath:
	$(GO) test -run 'FastPath|CycleSkip|Replay|Batch|Pooled|Reset' ./internal/machine/ ./internal/experiments/ ./internal/refsim/

# Regenerate the BENCH_<n>.json perf record (see README "Performance").
# Build a stamped binary rather than `go run` so the report records the
# VCS revision and a dirty checkout is refused.
bench:
	$(GO) build -o bench.bin ./cmd/bench && ./bench.bin; rm -f bench.bin

# One quick pass over the whole benchmark harness (tiny benchtime,
# output discarded): catches bit-rot in cmd/bench — including the
# in-process daemon section — without committing numbers.
bench-smoke:
	$(GO) run ./cmd/bench -benchtime 2ms -o /dev/null -allow-dirty

# Profile the benchmark suite; inspect with `go tool pprof cpu.out`.
profile:
	$(GO) run ./cmd/bench -benchtime 200ms -o /dev/null -cpuprofile cpu.out -memprofile mem.out

experiments:
	$(GO) run ./cmd/experiments

# Run the default fault-injection campaign (see README
# "Fault-injection campaigns"). Exits non-zero if any covered-class
# injection escapes repair.
faultcamp:
	$(GO) run ./cmd/faultcamp

# Run the simulation daemon (see README "Serving the simulator") with
# the persistent result store, so restarts answer from disk.
serve:
	$(GO) run ./cmd/ckptd -store-dir .ckptd-store

# Remove the local daemon store (persisted results and campaign
# progress records).
clean-store:
	rm -rf .ckptd-store

# Drive a running ckptd with the default load mix and refresh
# BENCH_4.json (start one first: `make serve`).
loadtest:
	$(GO) run ./cmd/ckptload

# End-to-end serving smoke test: boots ckptd on a free port, asserts
# 0 failed jobs, >=1 cache hit, and single-flight coalescing via
# ckptload -smoke, then SIGTERMs the daemon and requires a clean drain.
smoke:
	sh scripts/smoke.sh

# Cluster smoke test: coordinator + 2 workers + a lone reference
# daemon as real processes; a sweep, a campaign, and sims go through
# the cluster path (ckptload -diff-addr) and must come back
# byte-identical to the single node, with >=1 sub-job dispatched and
# clean drains all round.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# Time-travel debug session smoke test: a scripted ckptdbg session
# (create -> run -> rewind -> divergence audit -> completion) against a
# real ckptd, then SIGTERM with a live event stream, which must receive
# a terminal "closed" event before the clean drain.
session-smoke:
	sh scripts/session_smoke.sh

# rv32 frontend smoke test: every embedded compiled-rv32 corpus binary
# golden-checked across scheme shapes, then served through ckptd (corpus
# reference + inline image + mini fault campaign, which must stay clean
# for the covered classes) and debugged via ckptdbg loadrv32.
rv32-smoke:
	sh scripts/rv32_smoke.sh

ci: vet test fastpath race bench-smoke smoke cluster-smoke session-smoke rv32-smoke
