// Package stats defines the metric records shared by the machines,
// baselines, and the experiment harness.
package stats

import (
	"fmt"
	"strings"
)

// StallReason classifies cycles in which the issue unit could not issue.
type StallReason uint8

// Stall reasons.
const (
	StallNone     StallReason = iota
	StallScheme               // checkpoint scheme blocked (insufficient backup spaces)
	StallRS                   // reservation stations full
	StallLSQ                  // load/store queue full
	StallJump                 // unresolved indirect jump
	StallBranch               // non-speculative machine waiting on a branch
	StallFetchOut             // fetch halted (HALT issued or fell off code)
	StallPrecise              // precise (single-step) mode serialisation
	StallStoreBuf             // store blocked on a full difference buffer
	StallRepair               // difference-buffer undo work in progress (one entry per cycle)
	numStallReasons
)

// String returns a short reason name.
func (r StallReason) String() string {
	switch r {
	case StallNone:
		return "none"
	case StallScheme:
		return "scheme"
	case StallRS:
		return "rs-full"
	case StallLSQ:
		return "lsq-full"
	case StallJump:
		return "jump"
	case StallBranch:
		return "branch"
	case StallFetchOut:
		return "fetch-out"
	case StallPrecise:
		return "precise"
	case StallStoreBuf:
		return "store-buffer"
	case StallRepair:
		return "repair"
	}
	return fmt.Sprintf("stall(%d)", uint8(r))
}

// NumStallReasons is the number of stall classifications.
const NumStallReasons = int(numStallReasons)

// Run aggregates the metrics of one machine run.
type Run struct {
	Cycles       int64
	Issued       int64 // operations issued, including wrong-path noise
	Retired      int64 // architecturally completed instructions (golden count)
	WrongPath    int64 // issued operations later squashed
	StallCycles  [NumStallReasons]int64
	PreciseInsts int64 // instructions executed in single-step mode
	ERepairs     int64
	BRepairs     int64
	Checkpoints  int64
	Branches     int64 // correct-path conditional branches resolved
	Mispredicts  int64 // correct-path mispredictions (B-repairs on the true path)
	Exceptions   int64 // architecturally handled exceptions
	// MaxWindow is the peak number of simultaneously active (issued,
	// unfinished) operations — the quantity Theorem 3 bounds by the sum
	// of the active checkpoints' fault repair range sizes.
	MaxWindow int64
}

// IPC returns retired instructions per cycle.
func (r *Run) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Retired) / float64(r.Cycles)
}

// StallTotal returns the total stalled issue cycles across reasons.
func (r *Run) StallTotal() int64 {
	var t int64
	for i := 1; i < NumStallReasons; i++ {
		t += r.StallCycles[i]
	}
	return t
}

// MispredictRate returns mispredictions per resolved correct-path
// branch.
func (r *Run) MispredictRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.Branches)
}

// InstsPerBRepair returns retired instructions per B-repair — the
// paper's "a B-repair occurs on the average every 28 instructions"
// metric.
func (r *Run) InstsPerBRepair() float64 {
	if r.BRepairs == 0 {
		return 0
	}
	return float64(r.Retired) / float64(r.BRepairs)
}

// String renders a compact single-line summary.
func (r *Run) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d retired=%d ipc=%.3f issued=%d wrongpath=%d", r.Cycles, r.Retired, r.IPC(), r.Issued, r.WrongPath)
	fmt.Fprintf(&b, " brepairs=%d erepairs=%d ckpts=%d stalls=%d", r.BRepairs, r.ERepairs, r.Checkpoints, r.StallTotal())
	return b.String()
}
