; Euclid's algorithm: gcd(1071, 462) = 21.
; Run with: go run ./cmd/ckptsim -prog examples/progs/gcd.s
    addi r1, r0, 1071
    addi r2, r0, 462
gcd:
    beq  r2, r0, done
    rem  r3, r1, r2
    add  r1, r0, r2
    add  r2, r0, r3
    j    gcd
done:
    sw   r1, result(r0)
    halt
.data 0x1000
result: .word 0
