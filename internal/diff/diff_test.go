package diff

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
)

func newBD(t *testing.T, algo Algo, cap int) (*Backward, *cache.Cache, *mem.Memory) {
	t.Helper()
	m := mem.New()
	m.Map(0, mem.PageSize)
	c := cache.MustNew(cache.Config{Sets: 4, Ways: 2, LineBytes: 16, Policy: cache.WriteBack}, m)
	return NewBackward(c, algo, cap), c, m
}

func TestBackwardBasicUndo(t *testing.T) {
	b, _, _ := newBD(t, Sophisticated, 0)
	b.Store(1, 0x10, 111, 0b1111)
	b.Store(2, 0x10, 222, 0b1111)
	b.Store(3, 0x20, 333, 0b1111)
	if v, _, _ := b.Load(0x10); v != 222 {
		t.Fatalf("pre-repair read %d", v)
	}
	b.Repair(2) // undo seq 2 and 3
	if v, _, _ := b.Load(0x10); v != 111 {
		t.Errorf("0x10 = %d, want 111", v)
	}
	if v, _, _ := b.Load(0x20); v != 0 {
		t.Errorf("0x20 = %d, want 0", v)
	}
	if b.Occupancy() != 1 {
		t.Errorf("occupancy %d, want 1 (entry for seq 1)", b.Occupancy())
	}
	b.Repair(1)
	if v, _, _ := b.Load(0x10); v != 0 {
		t.Errorf("full undo: %d", v)
	}
}

func TestBackwardByteMasks(t *testing.T) {
	b, _, _ := newBD(t, Sophisticated, 0)
	b.Store(1, 0x10, 0xAABBCCDD, 0b1111)
	b.Store(2, 0x10, 0x00EE0000, 0b0100) // overwrite lane 2
	if v, _, _ := b.Load(0x10); v != 0xAAEECCDD {
		t.Fatalf("masked store: %#x", v)
	}
	b.Repair(2)
	if v, _, _ := b.Load(0x10); v != 0xAABBCCDD {
		t.Errorf("masked undo: %#x", v)
	}
}

func TestBackwardInterleavedLiveKept(t *testing.T) {
	// Entries push in memory-modification order; a repair must undo the
	// young suffix by sequence, preserving interleaved older entries.
	b, _, _ := newBD(t, Simple, 0)
	b.Store(5, 0x10, 50, 0b1111) // young (will be undone)
	b.Store(2, 0x20, 20, 0b1111) // old (kept)
	b.Store(6, 0x30, 60, 0b1111) // young (undone)
	b.Store(3, 0x40, 30, 0b1111) // old (kept)
	b.Repair(5)
	if b.Occupancy() != 2 {
		t.Fatalf("occupancy %d, want 2", b.Occupancy())
	}
	if v, _, _ := b.Load(0x10); v != 0 {
		t.Errorf("0x10 not undone: %d", v)
	}
	if v, _, _ := b.Load(0x20); v != 20 {
		t.Errorf("0x20 lost: %d", v)
	}
	if v, _, _ := b.Load(0x40); v != 30 {
		t.Errorf("0x40 lost: %d", v)
	}
	// The kept entries still work for an older repair.
	b.Repair(2)
	if v, _, _ := b.Load(0x20); v != 0 {
		t.Errorf("0x20 second repair: %d", v)
	}
	if v, _, _ := b.Load(0x40); v != 0 {
		t.Errorf("0x40 second repair: %d", v)
	}
}

func TestBackwardCapacityStall(t *testing.T) {
	b, _, _ := newBD(t, Simple, 2)
	if ok, _, _ := b.Store(1, 0x10, 1, 0b1111); !ok {
		t.Fatal("store 1")
	}
	if ok, _, _ := b.Store(2, 0x14, 2, 0b1111); !ok {
		t.Fatal("store 2")
	}
	// Buffer full of live entries: the third store must stall.
	if ok, _, _ := b.Store(3, 0x18, 3, 0b1111); ok {
		t.Fatal("store 3 should stall")
	}
	if b.Stats().StallStores != 1 {
		t.Errorf("stall count %d", b.Stats().StallStores)
	}
	// Releasing makes the old entries dead; the store now succeeds by
	// discarding them (the paper's overflow rule).
	b.Release(3)
	if ok, _, _ := b.Store(3, 0x18, 3, 0b1111); !ok {
		t.Fatal("store 3 after release")
	}
	if b.Stats().Overflowed != 2 {
		t.Errorf("overflowed %d, want 2", b.Stats().Overflowed)
	}
}

func TestBackwardWriteThrough(t *testing.T) {
	m := mem.New()
	m.Map(0, mem.PageSize)
	c := cache.MustNew(cache.Config{Sets: 4, Ways: 2, LineBytes: 16, Policy: cache.WriteThrough}, m)
	b := NewBackward(c, Simple, 0)
	b.Store(1, 0x10, 77, 0b1111)
	// Write-through: memory updated immediately.
	if v, _ := m.Read32(0x10); v != 77 {
		t.Fatalf("write-through mem: %d", v)
	}
	b.Store(2, 0x10, 88, 0b1111)
	b.Repair(2)
	if v, _ := m.Read32(0x10); v != 77 {
		t.Errorf("write-through undo mem: %d", v)
	}
	if v, _, _ := b.Load(0x10); v != 77 {
		t.Errorf("write-through undo cache: %d", v)
	}
}

func TestForwardBasics(t *testing.T) {
	m := mem.New()
	m.Map(0, mem.PageSize)
	c := cache.MustNew(cache.DefaultConfig, m)
	f := NewForward(c, 0)
	f.Store(1, 0x10, 11, 0b1111)
	f.Store(2, 0x10, 22, 0b1111)
	// Loads must forward from the buffer.
	if v, hit, _ := f.Load(0x10); v != 22 || !hit {
		t.Fatalf("forwarded load: %d hit=%v", v, hit)
	}
	// Memory untouched until release.
	c.FlushAll()
	if v, _ := m.Read32(0x10); v != 0 {
		t.Fatalf("forward wrote memory early: %d", v)
	}
	// Repair discards; nothing to undo.
	f.Repair(2)
	if v, _, _ := f.Load(0x10); v != 11 {
		t.Errorf("after discard: %d", v)
	}
	f.Release(2) // applies seq 1
	c.FlushAll()
	if v, _ := m.Read32(0x10); v != 11 {
		t.Errorf("after release+flush: %d", v)
	}
	if f.Occupancy() != 0 {
		t.Errorf("occupancy %d", f.Occupancy())
	}
}

func TestForwardPartialMaskOverlay(t *testing.T) {
	m := mem.New()
	m.Map(0, mem.PageSize)
	c := cache.MustNew(cache.DefaultConfig, m)
	m.Write32(0x10, 0xAABBCCDD)
	f := NewForward(c, 0)
	f.Store(1, 0x10, 0x00EE0000, 0b0100)
	if v, _, _ := f.Load(0x10); v != 0xAAEECCDD {
		t.Errorf("overlay: %#x", v)
	}
	f.Store(2, 0x10, 0x000000FF, 0b0001)
	if v, _, _ := f.Load(0x10); v != 0xAAEECCFF {
		t.Errorf("double overlay: %#x", v)
	}
	f.Repair(2)
	if v, _, _ := f.Load(0x10); v != 0xAAEECCDD {
		t.Errorf("after discard: %#x", v)
	}
}

func TestForwardCapacityStall(t *testing.T) {
	m := mem.New()
	m.Map(0, mem.PageSize)
	c := cache.MustNew(cache.DefaultConfig, m)
	f := NewForward(c, 1)
	if ok, _, _ := f.Store(1, 0x10, 1, 0b1111); !ok {
		t.Fatal("store 1")
	}
	if ok, _, _ := f.Store(2, 0x14, 2, 0b1111); ok {
		t.Fatal("store 2 should stall")
	}
	f.Release(2)
	if ok, _, _ := f.Store(2, 0x14, 2, 0b1111); !ok {
		t.Fatal("store 2 after release")
	}
	// A store whose checkpoint already verified applies immediately.
	if ok, _, _ := f.Store(1, 0x18, 3, 0b1111); !ok {
		t.Fatal("pre-verified store")
	}
	if f.Stats().Applied == 0 {
		t.Error("expected immediate application")
	}
}

func TestForwardFinish(t *testing.T) {
	m := mem.New()
	m.Map(0, mem.PageSize)
	c := cache.MustNew(cache.DefaultConfig, m)
	f := NewForward(c, 0)
	f.Store(1, 0x10, 5, 0b1111)
	f.Store(2, 0x14, 6, 0b1111)
	f.Finish()
	if v, _ := m.Read32(0x10); v != 5 {
		t.Errorf("finish 0x10: %d", v)
	}
	if v, _ := m.Read32(0x14); v != 6 {
		t.Errorf("finish 0x14: %d", v)
	}
}

func TestPlainCannotRepair(t *testing.T) {
	m := mem.New()
	m.Map(0, mem.PageSize)
	c := cache.MustNew(cache.DefaultConfig, m)
	p := NewPlain(c)
	p.Store(1, 0x10, 9, 0b1111)
	if v, _, _ := p.Load(0x10); v != 9 {
		t.Errorf("plain store/load: %d", v)
	}
	defer func() {
		if recover() == nil {
			t.Error("Plain.Repair must panic")
		}
	}()
	p.Repair(1)
}

func TestBackwardFaultPropagation(t *testing.T) {
	b, _, _ := newBD(t, Simple, 0)
	if b.CheckAccess(0x9000, 4) != isa.ExcCodePageFault {
		t.Error("unmapped access must fault")
	}
	if b.CheckAccess(0x12, 4) != isa.ExcCodeMisaligned {
		t.Error("misaligned longword must fault")
	}
	if b.CheckAccess(0x12, 1) != isa.ExcCodeNone {
		t.Error("byte access has no alignment rule")
	}
}
