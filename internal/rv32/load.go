package rv32

import (
	"bytes"
	"fmt"

	"repro/internal/prog"
)

// Image is a loaded rv32 program before translation: one executable
// text region plus any initialised data regions, all byte-addressed in
// the rv32 address space.
type Image struct {
	Name     string
	Entry    uint32 // byte address of the first instruction
	TextBase uint32 // byte address of Text[0]; 4-aligned
	Text     []byte // executable bytes; length a multiple of 4
	Data     []prog.Segment
}

// LoadError reports a malformed binary image.
type LoadError struct {
	Name   string
	Reason string
}

func (e *LoadError) Error() string { return fmt.Sprintf("rv32: load %q: %s", e.Name, e.Reason) }

var elfMagic = []byte{0x7f, 'E', 'L', 'F'}

// IsELF reports whether data begins with the ELF magic.
func IsELF(data []byte) bool { return bytes.HasPrefix(data, elfMagic) }

// Load parses a binary image, autodetecting the container: ELF32
// executables by magic, anything else as a flat binary (text base 0,
// entry 0).
func Load(name string, data []byte) (*Image, error) {
	if IsELF(data) {
		return LoadELF(name, data)
	}
	return LoadFlat(name, data)
}

// LoadFlat wraps a raw little-endian rv32 image: the whole file is
// loaded at address 0 and execution starts at 0. Non-instruction words
// inside the image (inline constants, rodata placed after the code)
// are tolerated: translation turns them into halting instructions, and
// the image bytes are also mapped into data memory, so reading them as
// data works while jumping into them stops the machine.
func LoadFlat(name string, data []byte) (*Image, error) {
	if len(data) == 0 {
		return nil, &LoadError{name, "empty image"}
	}
	if len(data)%4 != 0 {
		return nil, &LoadError{name, fmt.Sprintf("flat image size %d is not a multiple of 4", len(data))}
	}
	text := make([]byte, len(data))
	copy(text, data)
	return &Image{Name: name, Text: text}, nil
}
