package experiments

import (
	"context"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/regfile"
	"repro/internal/trace"
)

func init() {
	register("F1", "precise repair points (Figure 1)", one(f1()))
	register("F2", "repair ranges of a checkpoint (Figure 2)", one(f2()))
	register("F3", "backup spaces under schemeE(2) (Figure 3)", one(f3()))
	register("F4", "schemeE(2) execution snapshots (Figure 4)", one(f4()))
	register("F5", "register bit cost, copy technique (Figure 5)", one(f5()))
	register("F6", "cache with backward difference (Figure 6)", one(f6()))
	register("F7", "schemeB(2) execution snapshots (Figure 7)", one(f7()))
	register("F8", "cache with forward difference (Figure 8)", one(f8()))
	register("T1", "dirty/hazard next-state functions (Table 1)", one(t1()))
}

// one wraps table construction so registration stays cheap and the
// work happens at Run time, for experiments that never fan out (their
// handful of sequential runs finish too quickly to be worth
// cancelling).
func one(f func() *Table) func(context.Context) []*Table {
	return func(context.Context) []*Table { return []*Table{f()} }
}

// sweep is one for experiments that fan simulations out over the pool
// and therefore take the cancellation context.
func sweep(f func(ctx context.Context) *Table) func(context.Context) []*Table {
	return func(ctx context.Context) []*Table { return []*Table{f(ctx)} }
}

func f1() func() *Table {
	return func() *Table {
		t := &Table{
			ID:    "F1",
			Title: "precise repair points per exception kind",
			Note: "Figure 1/§2.2: a trap's precise repair point is the boundary just " +
				"right of the violating instruction (it completes); a fault's is just " +
				"left of it (it must appear never to have executed). Values from the " +
				"implemented isa.Exception semantics for a violator at pc=100.",
			Header: []string{"exception", "kind", "resume pc"},
		}
		for _, code := range []isa.ExcCode{
			isa.ExcCodeOverflow, isa.ExcCodeSoftware,
			isa.ExcCodeDivideZero, isa.ExcCodePageFault, isa.ExcCodeMisaligned,
		} {
			e := isa.Exception{Code: code, PC: 100}
			t.AddRow(code.String(), e.Kind().String(), e.PreciseRepairPC())
		}
		return t
	}
}

func f2() func() *Table {
	return func() *Table {
		// Stage schemeE(2) with checkpoints at boundaries 4 and 8:
		// instructions 1..4 are in the trap range of ckpt@4 / fault
		// range of ckpt@0, etc.
		t := &Table{
			ID:    "F2",
			Title: "E-repair range composition (checkpoints every 4 instructions)",
			Note: "Figure 2: the E-repair range of a checkpoint is the union of its " +
				"trap repair range (instructions to its left, back to the previous " +
				"checkpoint) and its fault repair range (instructions to its right, up " +
				"to the next checkpoint). Adjacent checkpoints' E-ranges overlap only " +
				"at the instructions immediately left of each checkpoint. Segment " +
				"ownership below is from the implemented scheme's bookkeeping.",
			Header: []string{"op seq", "faults repair to", "traps repair to"},
		}
		s := core.NewSchemeE(2, 4, 0)
		sc := newScript(s, plainMem())
		sc.issue(1, 8) // creates checkpoints after ops 4 and 8
		views := s.Views()[0]
		for seq := 1; seq <= 8; seq++ {
			// The mechanism repairs a fault to the newest checkpoint
			// left of the instruction, and reaches a trap's precise
			// point (right of the instruction) from the same checkpoint
			// by single-stepping.
			faultTo := "ckpt@start"
			for _, v := range views {
				if v.BornSeq < uint64(seq) {
					faultTo = label(v)
				}
			}
			t.AddRow(seq, faultTo, faultTo+" + single-step")
		}
		return t
	}
}

func label(v core.View) string {
	if v.BornSeq == 0 {
		return "ckpt@start"
	}
	return "ckpt@" + itoa(int(v.BornSeq))
}

func itoa(i int) string {
	return string(appendInt(nil, i))
}

func appendInt(b []byte, i int) []byte {
	if i < 0 {
		b = append(b, '-')
		i = -i
	}
	if i >= 10 {
		b = appendInt(b, i/10)
	}
	return append(b, byte('0'+i%10))
}

func f3() func() *Table {
	return func() *Table {
		s := core.NewSchemeE(2, 4, 0)
		sc := newScript(s, plainMem())
		sc.issue(0, 8) // two segments in flight, both checkpoints active
		t := &Table{
			ID:    "F3",
			Title: "three logical spaces under schemeE(2)",
			Note: "Figure 3: current is the dominant space all active instructions " +
				"fetch from and store to; backup1 reflects only instructions left of " +
				"active1, backup2 only those left of active2. Rendered from the live " +
				"scheme state:",
			Header: []string{"diagram"},
		}
		t.AddRow(trace.Render(trace.Capture("schemeE(2), 8 issued, none finished", s)))
		return t
	}
}

func f4() func() *Table {
	return func() *Table {
		s := core.NewSchemeE(2, 4, 0)
		sc := newScript(s, plainMem())
		// t1: checkpoints A (after 4 ops) and B (after 8), all active.
		sc.issue(0, 8)
		t1 := trace.Capture("t1: activeE,2 = A, activeE,1 = B", s)
		// Retire A's range, issue past C: matches the paper's t2.
		sc.finish(4)
		sc.issue(8, 5)
		t2 := trace.Capture("t2: A retired; activeE,2 = B, activeE,1 = C", s)
		t := &Table{
			ID:    "F4",
			Title: "execution snapshots under schemeE(2)",
			Note: "Figure 4 / Example 2: after all instructions in A's E-repair range " +
				"finish, A retires, checkE adds C, and issue continues.",
			Header: []string{"diagram"},
		}
		t.AddRow(trace.Series(t1, t2))
		return t
	}
}

func f5() func() *Table {
	return func() *Table {
		t := &Table{
			ID:    "F5",
			Title: "copy-technique register file cost vs backup spaces",
			Note: "Figure 5/§3.2.1: each register bit is replicated once per logical " +
				"space; result word/bit line pairs cover current and backups 1..c-1 " +
				"(Theorem 4 removes the oldest backup's delivery lines). Push/recall " +
				"move no data through the ports — the technique's advantage — at a " +
				"storage cost growing with c+1.",
			Header: []string{"c", "cells/bit", "total bits", "result line pairs", "control lines"},
		}
		for c := 1; c <= 6; c++ {
			cm := regfile.Cost(c)
			t.AddRow(c, cm.CellsPerBit, cm.TotalBits, cm.ResultLinePairs, cm.SharedControlLines)
		}
		cm := regfile.Cost(2, 4)
		t.AddRow("2+4 (direct)", cm.CellsPerBit, cm.TotalBits, cm.ResultLinePairs, cm.SharedControlLines)
		return t
	}
}

func f6() func() *Table {
	return func() *Table {
		m := mem.New()
		m.Map(0, mem.PageSize)
		c := cache.MustNew(cache.Config{Sets: 4, Ways: 1, LineBytes: 16, Policy: cache.WriteBack}, m)
		b := diff.NewBackward(c, diff.Sophisticated, 0)
		// A write burst across two checkpoints, then a repair.
		for i := 0; i < 6; i++ {
			b.Store(uint64(i+1), uint32(i*4), uint32(100+i), 0b1111)
		}
		occBefore := b.Occupancy()
		b.Repair(4) // undo writes 4..6
		t := &Table{
			ID:    "F6",
			Title: "backward difference buffer in action",
			Note: "Figure 6: each out-of-order memory write pushes (address, mask, " +
				"old longword, checkpoint id); repair pops entries to recover cache " +
				"and memory. The buffer drains by exactly the undone suffix.",
			Header: []string{"metric", "value"},
		}
		st := b.Stats()
		t.AddRow("writes performed", st.Pushes)
		t.AddRow("occupancy before repair", occBefore)
		t.AddRow("entries undone by repair(ckpt 4)", st.Undone)
		t.AddRow("occupancy after repair", b.Occupancy())
		t.AddRow("value at 0x0c after undo", read32(c, 0x0c))
		t.AddRow("value at 0x08 (kept)", read32(c, 0x08))
		return t
	}
}

func read32(c *cache.Cache, addr uint32) uint32 {
	v, _, _ := c.ReadLongword(addr)
	return v
}

func f7() func() *Table {
	return func() *Table {
		s := core.NewSchemeB(2)
		sc := newScript(s, plainMem())
		// t1: two unverified branches A and B.
		sc.issue(0, 3)
		bA := sc.branch(3)
		sc.issue(4, 3)
		bB := sc.branch(7)
		sc.issue(8, 2)
		t1 := trace.Capture("t1: activeB,2 = A, activeB,1 = B (both pending)", s)
		// A verifies; a third branch C is issued: the window slides.
		sc.verify(bA, 4)
		sc.issue(10, 2)
		_ = sc.branch(12)
		t2 := trace.Capture("t2: A verified and reused; activeB,2 = B, activeB,1 = C", s)
		_ = bB
		t := &Table{
			ID:    "F7",
			Title: "execution snapshots under schemeB(2)",
			Note: "Figure 7 / Example 4: B checkpoints live at branch boundaries and " +
				"their spaces are reused as soon as the prediction verifies — the " +
				"relaxed reuse rule — even with instructions still active everywhere.",
			Header: []string{"diagram"},
		}
		t.AddRow(trace.Series(t1, t2))
		return t
	}
}

func f8() func() *Table {
	return func() *Table {
		m := mem.New()
		m.Map(0, mem.PageSize)
		c := cache.MustNew(cache.DefaultConfig, m)
		f := diff.NewForward(c, 0)
		for i := 0; i < 6; i++ {
			f.Store(uint64(i+1), uint32(i*4), uint32(200+i), 0b1111)
		}
		v, _, _ := f.Load(0x08)
		f.Repair(4)  // discard 4..6: nothing to undo
		f.Release(4) // retire 1..3 into the cache
		after, _, _ := f.Load(0x0c)
		t := &Table{
			ID:    "F8",
			Title: "forward difference buffer in action",
			Note: "Figure 8/§4.1.2: speculative stores are buffered (loads snoop the " +
				"buffer); verification applies them in order; a repair just discards " +
				"the unverified suffix — no undo work, which is why the paper " +
				"recommends forward differences for frequent B-repairs.",
			Header: []string{"metric", "value"},
		}
		st := f.Stats()
		t.AddRow("stores buffered", st.Pushes)
		t.AddRow("load of 0x08 before retire (forwarded)", v)
		t.AddRow("entries discarded by repair", st.Discarded)
		t.AddRow("entries applied at verification", st.Applied)
		t.AddRow("load of 0x0c after repair (never written)", after)
		return t
	}
}

func t1() func() *Table {
	return func() *Table {
		t := &Table{
			ID:    "T1",
			Title: "next-state functions of the dirty and hazard bits",
			Note: "Paper Table 1 for Algorithm 3(b), recovering a cached line " +
				"(repair case 2). H = line hazard bit, S = saved dirty bit in the " +
				"entry, D = line dirty bit. Derived from the paper's bit semantics " +
				"(the printed table is partially illegible in our scan) and verified " +
				"exhaustively against Theorem 6 by the model check in " +
				"internal/diff/table1_test.go: dirty is set after repair iff memory " +
				"is inconsistent with the line.",
			Header: []string{"H", "S", "D", "dirty'", "hazard'"},
		}
		for _, h := range []bool{false, true} {
			for _, s := range []bool{false, true} {
				for _, d := range []bool{false, true} {
					nd, nh := diff.Table1(h, s, d)
					t.AddRow(b01(h), b01(s), b01(d), b01(nd), b01(nh))
				}
			}
		}
		return t
	}
}

func b01(b bool) int {
	if b {
		return 1
	}
	return 0
}
