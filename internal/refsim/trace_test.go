package refsim

import (
	"sync"
	"testing"

	"repro/internal/prog"
	"repro/internal/workload"
)

// TestReplayObservationallyEqual drives a live Shadow and a Replay of
// the same program in lockstep for every kernel and checks the whole
// Oracle surface after every step.
func TestReplayObservationallyEqual(t *testing.T) {
	for _, k := range workload.Kernels() {
		p := k.Load()
		tr, err := Record(p, 0)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		live := Oracle(NewShadow(p))
		rep := Oracle(tr.Replay())
		step := 0
		for {
			if live.PC() != rep.PC() || live.Halted() != rep.Halted() ||
				live.Retired() != rep.Retired() || live.ExcCount() != rep.ExcCount() {
				t.Fatalf("%s step %d: state diverged: live pc=%d halted=%v retired=%d excs=%d, replay pc=%d halted=%v retired=%d excs=%d",
					k.Name, step, live.PC(), live.Halted(), live.Retired(), live.ExcCount(),
					rep.PC(), rep.Halted(), rep.Retired(), rep.ExcCount())
			}
			if live.Halted() {
				break
			}
			a, b := live.Step(), rep.Step()
			if a != b {
				t.Fatalf("%s step %d: StepResult diverged:\nlive:   %+v\nreplay: %+v", k.Name, step, a, b)
			}
			step++
		}
		// Stepping past the end behaves like the live shadow too.
		if a, b := live.Step(), rep.Step(); a != b {
			t.Fatalf("%s: post-halt Step diverged: %+v vs %+v", k.Name, a, b)
		}
	}
}

// TestRecordRejectsNonHalting: a program that exceeds the step bound
// must not yield a partial trace.
func TestRecordRejectsNonHalting(t *testing.T) {
	k, _ := workload.ByName("fib")
	if _, err := Record(k.Load(), 3); err == nil {
		t.Fatal("expected error recording with a too-small step bound")
	}
}

// TestCachedTraceSharedAndConcurrent: CachedTrace memoizes one trace
// per program instance, safely under concurrency.
func TestCachedTraceSharedAndConcurrent(t *testing.T) {
	k, _ := workload.ByName("bubble")
	p := k.Load()
	const goroutines = 8
	got := make([]*Trace, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr, err := CachedTrace(p)
			if err != nil {
				t.Error(err)
				return
			}
			got[g] = tr
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if got[g] != got[0] {
			t.Fatal("CachedTrace returned distinct traces for one program")
		}
	}
	// A distinct program instance gets its own slot.
	p2 := &prog.Program{Name: p.Name, Code: p.Code, Entry: p.Entry, Data: p.Data}
	tr2, err := CachedTrace(p2)
	if err != nil {
		t.Fatal(err)
	}
	if tr2 == got[0] {
		t.Fatal("distinct program instances must not share a memo slot")
	}
	if tr2.Program() != p2 {
		t.Fatal("trace must report the program it was recorded from")
	}
}
