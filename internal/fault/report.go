package fault

import (
	"fmt"
	"strings"

	"repro/internal/experiments"
	"repro/internal/stats"
)

// Count returns how many executed injections of model m ended in
// outcome o.
func (r *Report) Count(m Model, o Outcome) int {
	n := 0
	for i := range r.Results {
		if r.Results[i].Inj.Model == m && r.Results[i].Outcome == o {
			n++
		}
	}
	return n
}

// CountOutcome returns how many executed injections ended in outcome o,
// across all models.
func (r *Report) CountOutcome(o Outcome) int {
	n := 0
	for i := range r.Results {
		if r.Results[i].Outcome == o {
			n++
		}
	}
	return n
}

// CoveredBad returns the executed covered-model injections that ended
// in an outcome checkpoint repair claims to exclude (SDC, Hang, or
// Crash) — the tier-1 assertion is that this is empty.
func (r *Report) CoveredBad() []RunResult {
	var bad []RunResult
	for _, res := range r.Results {
		if !res.Inj.Model.Covered() {
			continue
		}
		switch res.Outcome {
		case SDC, Hang, Crash:
			bad = append(bad, res)
		}
	}
	return bad
}

// RepairLatency returns the latency distribution (extra cycles over the
// fault-free baseline) of model m's Repaired runs.
func (r *Report) RepairLatency(m Model) *stats.Dist {
	var d stats.Dist
	for i := range r.Results {
		if r.Results[i].Inj.Model == m && r.Results[i].Outcome == Repaired {
			d.Add(r.Results[i].Latency)
		}
	}
	return &d
}

// modelRaw tallies the raw, pruned, and executed point counts of model
// m in the plan.
func (r *Report) modelRaw(m Model) (raw, pruned, exec int) {
	for i := range r.Plan.Exec {
		if r.Plan.Exec[i].Model == m {
			exec++
			raw += r.Plan.Covers[i]
		}
	}
	for i := range r.Plan.Pruned {
		if r.Plan.Pruned[i].Model == m {
			pruned++
			raw++
		}
	}
	return raw, pruned, exec
}

// Table renders the campaign as a deterministic experiments.Table. The
// output depends only on (program, machine config, campaign config) —
// never on worker count or scheduling.
func (r *Report) Table(id string) *experiments.Table {
	t := &experiments.Table{
		ID:    id,
		Title: fmt.Sprintf("fault campaign: %s on %s", r.Workload, r.Scheme),
		Note: fmt.Sprintf("seed=%d events=%d baseline=%d cycles, %d repairs; "+
			"raw=%d points, pruned=%d dead, executed=%d runs (%.1fx coverage). "+
			"Detected models (fu-detected, spurious-exc) are the classes checkpoint "+
			"repair covers: SDC/hang/crash must be zero and every repair is "+
			"byte-verified against the reference trace.",
			r.Seed, r.Events, r.BaselineCycles, r.BaselineRepairs,
			r.Plan.Raw, len(r.Plan.Pruned), len(r.Plan.Exec), r.Plan.CoverageRatio()),
		Header: []string{"model", "raw", "pruned", "exec", "masked", "repaired", "detected", "SDC", "hang", "crash", "repair latency (cycles)"},
	}
	for _, m := range r.Models {
		raw, pruned, exec := r.modelRaw(m)
		t.AddRow(m, raw, pruned, exec,
			r.Count(m, Masked), r.Count(m, Repaired), r.Count(m, Detected),
			r.Count(m, SDC), r.Count(m, Hang), r.Count(m, Crash),
			r.RepairLatency(m).String())
	}
	return t
}

// String renders the campaign table with a default ID.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString(r.Table("FC").String())
	return b.String()
}
