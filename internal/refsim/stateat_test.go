package refsim

import (
	"testing"

	"repro/internal/workload"
)

// stateAtKernels exercises plain computation, demand paging (pagedemo),
// vector faults (vecfault), and skip-kind faults (divzero), so the
// delta streams cover register writes, memory writes, and page maps.
var stateAtKernels = []string{"fib", "bubble", "pagedemo", "vecfault", "divzero"}

// TestStateAtMatchesShadow steps a live Shadow alongside StateAt queries
// and demands identical architectural state at every boundary.
func TestStateAtMatchesShadow(t *testing.T) {
	for _, name := range stateAtKernels {
		t.Run(name, func(t *testing.T) {
			k, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p := k.Load()
			tr, err := Record(p, 0)
			if err != nil {
				t.Fatal(err)
			}
			s := NewShadow(p)
			r := tr.Replay()
			for i := 0; ; i++ {
				st := r.StateAt(i)
				if *s.Regs() != st.Regs {
					t.Fatalf("step %d: regs diverge: shadow=%v stateat=%v", i, *s.Regs(), st.Regs)
				}
				if !s.Mem().Equal(st.Mem) {
					t.Fatalf("step %d: memory diverges", i)
				}
				if s.Halted() {
					if i != tr.Steps() {
						t.Fatalf("shadow halted after %d steps, trace recorded %d", i, tr.Steps())
					}
					break
				}
				s.Step()
			}
		})
	}
}

// TestStateAtBackwardSeek checks that a backward query rebuilds from the
// program image and yields the same state as a forward pass.
func TestStateAtBackwardSeek(t *testing.T) {
	k, err := workload.ByName("pagedemo")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Record(k.Load(), 0)
	if err != nil {
		t.Fatal(err)
	}
	mid := tr.Steps() / 2
	r := tr.Replay()
	forward := r.StateAt(mid)
	r.StateAt(tr.Steps())
	back := r.StateAt(mid) // backward: forces a rebuild
	if forward.Regs != back.Regs {
		t.Fatalf("backward seek regs diverge: %v vs %v", forward.Regs, back.Regs)
	}
	if !forward.Mem.Equal(back.Mem) {
		t.Fatal("backward seek memory diverges")
	}
	// Snapshots are deep copies: mutating one must not affect another.
	back.Mem.WriteMasked(forward.Mem.MappedPages()[0], 0xdeadbeef, 0b1111)
	again := r.StateAt(mid)
	if !forward.Mem.Equal(again.Mem) {
		t.Fatal("StateAt snapshot aliases the replay cursor")
	}
}

// TestTraceFinalResult checks the trace-reconstructed final state
// against a full reference run.
func TestTraceFinalResult(t *testing.T) {
	for _, name := range stateAtKernels {
		t.Run(name, func(t *testing.T) {
			k, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p := k.Load()
			tr, err := Record(p, 0)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Run(p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := tr.FinalResult()
			if !got.RegsEqual(want) {
				t.Fatalf("regs: got %v want %v", got.Regs, want.Regs)
			}
			if !got.Mem.Equal(want.Mem) {
				t.Fatal("memory diverges")
			}
			if !got.ExceptionsEqual(want) {
				t.Fatalf("exceptions: got %v want %v", got.Exceptions, want.Exceptions)
			}
			if got.Halted != want.Halted || got.Retired != want.Retired {
				t.Fatalf("halted/retired: got %v/%d want %v/%d", got.Halted, got.Retired, want.Halted, want.Retired)
			}
		})
	}
}
