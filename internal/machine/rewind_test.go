package machine

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/refsim"
	"repro/internal/workload"
)

// rewindableSchemes builds the rewind test matrix: every scheme family
// (pure E, pure B, and the three combined mechanisms), each paired with
// the speculation setting it is correct under.
func rewindableSchemes() []struct {
	name string
	mk   func() core.Scheme
	spec bool
} {
	return []struct {
		name string
		mk   func() core.Scheme
		spec bool
	}{
		{"e4", func() core.Scheme { return core.NewSchemeE(4, 8, 0) }, false},
		{"b4", func() core.Scheme { return core.NewSchemeB(4) }, true},
		{"tight4", func() core.Scheme { return core.NewSchemeTight(4, 0) }, true},
		{"direct", func() core.Scheme { return core.NewSchemeDirect(2, 4, 12, 0) }, true},
		{"loose", func() core.Scheme { return core.NewSchemeLoose(2, 4, 12) }, true},
	}
}

// rewindMidRun steps the machine to roughly midCycle, then keeps
// stepping until a Rewind of some live recorded boundary succeeds.
// Transient failures (busy pipeline, target squashed while draining)
// are expected and retried on later cycles.
func rewindMidRun(t *testing.T, m *Machine, midCycle int64) *RewindInfo {
	t.Helper()
	for m.Cycle() < midCycle && m.Step() {
	}
	for {
		for _, tgt := range m.RewindTargets() {
			if !tgt.Rewindable {
				continue
			}
			info, err := m.Rewind(tgt.Seq)
			if err == nil {
				return info
			}
			if errors.Is(err, ErrRewindBusy) || errors.Is(err, ErrNotRewindable) {
				continue
			}
			t.Fatalf("rewind seq %d: %v", tgt.Seq, err)
		}
		if !m.Step() {
			t.Fatalf("run ended (cycle %d, done=%v, fatal=%v) before any rewind succeeded",
				m.Cycle(), m.Done(), m.Fatal())
		}
	}
}

// checkStateAt compares the machine's architectural state against the
// golden boundary snapshot: full register file plus every longword of
// the snapshot's mapped pages as observed through the machine's memory
// system.
func checkStateAt(t *testing.T, m *Machine, st *refsim.ArchState) {
	t.Helper()
	if got := m.RegsSnapshot(); got != st.Regs {
		t.Fatalf("registers after rewind: got %v want %v", got, st.Regs)
	}
	for addr := uint32(0); addr < 1<<20; addr += mem.PageSize {
		if !st.Mem.Mapped(addr) {
			continue
		}
		for off := uint32(0); off < mem.PageSize; off += 4 {
			want, exc := st.Mem.Read32(addr + off)
			if exc != 0 {
				continue
			}
			got, ok := m.PeekMem(addr + off)
			if !ok || got != want {
				t.Fatalf("mem[%#x] after rewind: got %#x (ok=%v) want %#x", addr+off, got, ok, want)
			}
		}
	}
}

// TestRewindEquivalence is the rewind correctness anchor: for every
// scheme family, memory system, and cycle-skip setting, rewinding to a
// live checkpoint mid-run must (a) land the architectural state exactly
// on the golden boundary snapshot, and (b) re-running to completion
// must reproduce the architecturally identical final state a fresh
// uninterrupted run produces.
func TestRewindEquivalence(t *testing.T) {
	kk, err := workload.ByName("bubble")
	if err != nil {
		t.Fatal(err)
	}
	k := kk.Load()
	tr := refsim.MustRecord(k, 0)
	ref, err := refsim.Run(k, refsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range rewindableSchemes() {
		for _, ms := range []MemSystemKind{MemBackward3a, MemBackward3b, MemForward} {
			for _, skip := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/%s/skip=%v", sc.name, ms, !skip), func(t *testing.T) {
					mkCfg := func() Config {
						cfg := Config{
							Scheme:           sc.mk(),
							MemSystem:        ms,
							Speculate:        sc.spec,
							RefTrace:         tr,
							Rewindable:       true,
							DisableCycleSkip: skip,
						}
						if sc.spec {
							cfg.Predictor = bpred.NewBimodal(256)
						}
						return cfg
					}
					fresh, err := Run(k, mkCfg())
					if err != nil {
						t.Fatalf("fresh run: %v", err)
					}
					m, err := New(k, mkCfg())
					if err != nil {
						t.Fatal(err)
					}
					info := rewindMidRun(t, m, fresh.Stats.Cycles/2)
					checkStateAt(t, m, tr.Replay().StateAt(info.Steps))
					res, err := m.RunLoop()
					if err != nil {
						t.Fatalf("re-run after rewind: %v", err)
					}
					if err := res.MatchRef(ref); err != nil {
						t.Fatalf("re-run after rewind diverged from golden model: %v", err)
					}
					if res.Regs != fresh.Regs {
						t.Fatalf("final registers differ from fresh run: %v vs %v", res.Regs, fresh.Regs)
					}
					if d := res.Mem.Diff(fresh.Mem); d != "" {
						t.Fatalf("final memory differs from fresh run: %s", d)
					}
				})
			}
		}
	}
}

// TestRewindTwiceLiveShadow rewinds the same run twice — the second
// rewind crossing the first — with no recorded trace attached, covering
// the re-interpreted-shadow oracle path in freshOracleAt.
func TestRewindTwiceLiveShadow(t *testing.T) {
	kk, err := workload.ByName("sieve")
	if err != nil {
		t.Fatal(err)
	}
	k := kk.Load()
	tr := refsim.MustRecord(k, 0) // checking only; NOT passed to the machine
	ref, err := refsim.Run(k, refsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Scheme:     core.NewSchemeTight(4, 0),
		Predictor:  bpred.NewBimodal(256),
		Speculate:  true,
		MemSystem:  MemBackward3b,
		Rewindable: true,
	}
	fresh, err := Run(k, Config{
		Scheme:    core.NewSchemeTight(4, 0),
		Predictor: bpred.NewBimodal(256),
		Speculate: true,
		MemSystem: MemBackward3b,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := rewindMidRun(t, m, fresh.Stats.Cycles/2)
	checkStateAt(t, m, tr.Replay().StateAt(first.Steps))
	second := rewindMidRun(t, m, m.Cycle()+fresh.Stats.Cycles/4)
	checkStateAt(t, m, tr.Replay().StateAt(second.Steps))
	res, err := m.RunLoop()
	if err != nil {
		t.Fatalf("re-run after double rewind: %v", err)
	}
	if err := res.MatchRef(ref); err != nil {
		t.Fatalf("double rewind diverged from golden model: %v", err)
	}
}

// TestRewindWithSkipExceptions rewinds a run whose exception handlers
// are skip-kind (divide by zero). An E-repair clears the whole
// checkpoint window, so no live boundary ever predates a HANDLED
// exception — what rewind must guarantee instead is that the exception
// log always equals the golden prefix of the boundary landed on, and
// that the re-run rebuilds the full log exactly.
func TestRewindWithSkipExceptions(t *testing.T) {
	kk, err := workload.ByName("divzero")
	if err != nil {
		t.Fatal(err)
	}
	k := kk.Load()
	tr := refsim.MustRecord(k, 0)
	ref, err := refsim.Run(k, refsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(k, Config{
		Scheme:     core.NewSchemeE(8, 2, 0),
		Speculate:  false,
		MemSystem:  MemBackward3b,
		RefTrace:   tr,
		Rewindable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	info := rewindMidRun(t, m, 1)
	got := m.Exceptions()
	if len(got) != info.Excs {
		t.Fatalf("exception log after rewind: %d entries, want %d", len(got), info.Excs)
	}
	for i, e := range got {
		if e != tr.Exceptions()[i] {
			t.Fatalf("exception %d after rewind: %v, golden %v", i, e, tr.Exceptions()[i])
		}
	}
	res, err := m.RunLoop()
	if err != nil {
		t.Fatalf("re-run: %v", err)
	}
	if err := res.MatchRef(ref); err != nil {
		t.Fatalf("re-run diverged: %v", err)
	}
	if len(res.Exceptions) != len(ref.Exceptions) {
		t.Fatalf("re-run rebuilt %d exceptions, want %d", len(res.Exceptions), len(ref.Exceptions))
	}
}

// TestRewindAfterCompletion: a finished (but not Finished) run still
// holds live checkpoints; rewinding from the done state re-opens the
// run and re-running reproduces the same completion — the time-travel
// debugger's core loop.
func TestRewindAfterCompletion(t *testing.T) {
	kk, err := workload.ByName("divzero")
	if err != nil {
		t.Fatal(err)
	}
	k := kk.Load()
	tr := refsim.MustRecord(k, 0)
	ref, err := refsim.Run(k, refsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(k, Config{
		Scheme:     core.NewSchemeE(8, 2, 0),
		Speculate:  false,
		MemSystem:  MemBackward3b,
		RefTrace:   tr,
		Rewindable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for m.Step() {
	}
	if m.Fatal() != nil {
		t.Fatal(m.Fatal())
	}
	if !m.Done() {
		t.Fatal("run did not complete")
	}
	var pick *RewindInfo
	for _, tgt := range m.RewindTargets() {
		tgt := tgt
		if tgt.Rewindable && (pick == nil || tgt.Seq < pick.Seq) {
			pick = &tgt
		}
	}
	if pick == nil {
		t.Fatalf("no rewindable boundary at completion; targets: %+v", m.RewindTargets())
	}
	info, err := m.Rewind(pick.Seq)
	if err != nil {
		t.Fatalf("rewind from done state: %v", err)
	}
	if m.Done() {
		t.Fatal("machine still done after rewind")
	}
	checkStateAt(t, m, tr.Replay().StateAt(info.Steps))
	res, err := m.RunLoop()
	if err != nil {
		t.Fatalf("re-run: %v", err)
	}
	if err := res.MatchRef(ref); err != nil {
		t.Fatalf("re-run diverged: %v", err)
	}
}

// TestRewindRefusedAcrossDemandPaging: pages mapped by a resume-kind
// handler cannot be unmapped, so every boundary older than the page
// fault must be reported and refused as non-rewindable once the fault
// has been handled.
func TestRewindRefusedAcrossDemandPaging(t *testing.T) {
	kk, err := workload.ByName("pagedemo")
	if err != nil {
		t.Fatal(err)
	}
	k := kk.Load()
	tr := refsim.MustRecord(k, 0)
	m, err := New(k, Config{
		Scheme:     core.NewSchemeE(2, 8, 0),
		Speculate:  false,
		MemSystem:  MemBackward3b,
		RefTrace:   tr,
		Rewindable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for m.Step() {
	}
	if m.Fatal() != nil {
		t.Fatal(m.Fatal())
	}
	if len(m.Exceptions()) == 0 {
		t.Fatal("pagedemo handled no exceptions")
	}
	// The entry boundary (seq 0) predates every exception; rewinding to
	// it would cross the demand-paged mapping.
	_, err = m.Rewind(0)
	if !errors.Is(err, ErrNotRewindable) {
		t.Fatalf("rewind across a demand-paged mapping: got %v, want ErrNotRewindable", err)
	}
}

// TestRewindValidation covers the permanent refusal paths.
func TestRewindValidation(t *testing.T) {
	kk, err := workload.ByName("fib")
	if err != nil {
		t.Fatal(err)
	}
	k := kk.Load()
	// Rewindable off: no records, immediate refusal.
	m, err := New(k, Config{Scheme: core.NewSchemeE(2, 8, 0), MemSystem: MemBackward3b})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Rewind(0); !errors.Is(err, ErrNotRewindable) {
		t.Fatalf("Rewindable off: got %v", err)
	}
	// Unknown boundary.
	m, err = New(k, Config{Scheme: core.NewSchemeE(2, 8, 0), MemSystem: MemBackward3b, Rewindable: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Rewind(1 << 40); !errors.Is(err, ErrNotRewindable) {
		t.Fatalf("unknown boundary: got %v", err)
	}
	// After Finish the speculative state is drained for good.
	if _, err := m.RunLoop(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Rewind(0); !errors.Is(err, ErrNotRewindable) {
		t.Fatalf("after Finish: got %v", err)
	}
}

// TestGoldenBoundaryAtCompletion: once a run completes, the machine
// sits on a recorded golden boundary matching the oracle's coordinates.
func TestGoldenBoundaryAtCompletion(t *testing.T) {
	kk, err := workload.ByName("fib")
	if err != nil {
		t.Fatal(err)
	}
	k := kk.Load()
	m, err := New(k, Config{
		Scheme:     core.NewSchemeTight(4, 0),
		Predictor:  bpred.NewBimodal(256),
		Speculate:  true,
		MemSystem:  MemForward,
		Rewindable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for m.Step() {
	}
	if m.Fatal() != nil {
		t.Fatal(m.Fatal())
	}
	gb, ok := m.GoldenBoundary()
	if !ok {
		t.Fatal("no golden boundary at completion")
	}
	if gb.Retired != m.OracleRetired() {
		t.Fatalf("golden boundary retired=%d, oracle retired=%d", gb.Retired, m.OracleRetired())
	}
	if gb.Excs != len(m.Exceptions()) {
		t.Fatalf("golden boundary excs=%d, log has %d", gb.Excs, len(m.Exceptions()))
	}
}

// TestNewAtEquivalence: a machine started at golden boundary n of a
// recorded trace must complete with the same architectural outcome as
// the full run — even under a scheme and memory system different from
// anything the trace knows about (the config-change rewind).
func TestNewAtEquivalence(t *testing.T) {
	for _, kn := range []string{"bubble", "divzero"} {
		kk, err := workload.ByName(kn)
		if err != nil {
			t.Fatal(err)
		}
	k := kk.Load()
		tr := refsim.MustRecord(k, 0)
		ref, err := refsim.Run(k, refsim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range rewindableSchemes() {
			if sc.spec && kn == "divzero" {
				continue // speculative schemes pair with the branchy kernel
			}
			for _, boundary := range []int{1, tr.Steps() / 2, tr.Steps() - 1} {
				t.Run(fmt.Sprintf("%s/%s/at%d", kn, sc.name, boundary), func(t *testing.T) {
					cfg := Config{
						Scheme:     sc.mk(),
						MemSystem:  MemBackward3b,
						Speculate:  sc.spec,
						RefTrace:   tr,
						Rewindable: true,
					}
					if sc.spec {
						cfg.Predictor = bpred.NewBimodal(256)
					}
					m, err := NewAt(k, cfg, boundary)
					if err != nil {
						t.Fatal(err)
					}
					checkStateAt(t, m, tr.Replay().StateAt(boundary))
					res, err := m.RunLoop()
					if err != nil {
						t.Fatalf("run from boundary %d: %v", boundary, err)
					}
					if err := res.MatchRef(ref); err != nil {
						t.Fatalf("run from boundary %d diverged: %v", boundary, err)
					}
				})
			}
		}
	}
}

// TestNewAtValidation covers the refusal paths of NewAt.
func TestNewAtValidation(t *testing.T) {
	kk, err := workload.ByName("fib")
	if err != nil {
		t.Fatal(err)
	}
	k := kk.Load()
	tr := refsim.MustRecord(k, 0)
	base := func() Config {
		return Config{Scheme: core.NewSchemeE(2, 8, 0), MemSystem: MemBackward3b, RefTrace: tr}
	}
	cfg := base()
	cfg.RefTrace = nil
	if _, err := NewAt(k, cfg, 1); err == nil {
		t.Fatal("NewAt without RefTrace must fail")
	}
	if _, err := NewAt(k, base(), -1); err == nil {
		t.Fatal("NewAt with negative boundary must fail")
	}
	if _, err := NewAt(k, base(), tr.Steps()+1); err == nil {
		t.Fatal("NewAt past the trace end must fail")
	}
	if _, err := NewAt(k, base(), tr.Steps()); err == nil {
		t.Fatal("NewAt at the architectural halt must fail")
	}
}
