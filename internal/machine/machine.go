// Package machine assembles the complete out-of-order execution machine
// of the paper: the ooo engine (issue unit, reservation window,
// functional units, load/store queue), a branch predictor, the
// copy-technique checkpointed register file, a difference-buffer memory
// hierarchy, and — at the centre — one of the internal/core checkpoint
// repair schemes.
//
// The machine is cycle-driven and deterministic. Instructions are
// issued sequentially along the predicted path, so the issuing stream
// really is "the dynamic instruction stream interspersed with some
// noise from the incorrectly predicted branch paths" (§2.1): wrong-path
// operations allocate resources, execute, and modify the current
// logical space, and only checkpoint repair undoes them.
//
// A shadow reference interpreter runs alongside, following the
// architecturally correct path. It serves two purposes: supplying
// oracle outcomes to the oracle/synthetic predictors at issue time, and
// providing the golden architectural state the property-based tests
// compare against. It never influences machine state.
package machine

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/ooo"
	"repro/internal/prog"
	"repro/internal/refsim"
	"repro/internal/regfile"
	"repro/internal/sem"
	"repro/internal/stats"
)

// MemSystemKind selects the memory checkpointing technique.
type MemSystemKind uint8

// Memory system kinds.
const (
	// MemBackward3a: backward difference with Algorithm 3(a) repair.
	MemBackward3a MemSystemKind = iota
	// MemBackward3b: backward difference with Algorithm 3(b) repair
	// (hazard bits, Table 1).
	MemBackward3b
	// MemForward: forward difference (redo log with load forwarding).
	MemForward
)

// String returns a readable kind name.
func (k MemSystemKind) String() string {
	switch k {
	case MemBackward3a:
		return "backward-3a"
	case MemBackward3b:
		return "backward-3b"
	case MemForward:
		return "forward"
	}
	return fmt.Sprintf("memsys(%d)", uint8(k))
}

// Timing sizes the pipeline.
type Timing struct {
	IssueWidth int
	Window     int // reservation window entries (all in-flight ops)
	LSQ        int
	ALUUnits   int
	ALULat     int
	MulDivUnit int
	MulLat     int
	DivLat     int
	BranchLat  int
	MemPorts   int
	CacheHit   int
	CacheMiss  int
	CDBWidth   int // results delivered per cycle
	// ExtraLatency, if non-nil, adds per-operation latency jitter —
	// "execution times ... are not, in general, predictable" (§2.1).
	// Must be a pure function of seq for reproducibility.
	ExtraLatency func(seq uint64) int
}

// DefaultTiming is a modest four-wide-ish configuration.
var DefaultTiming = Timing{
	IssueWidth: 2,
	Window:     32,
	LSQ:        16,
	ALUUnits:   2,
	ALULat:     1,
	MulDivUnit: 1,
	MulLat:     4,
	DivLat:     12,
	BranchLat:  1,
	MemPorts:   1,
	CacheHit:   1,
	CacheMiss:  8,
	CDBWidth:   2,
}

// Config assembles a machine.
type Config struct {
	Scheme    core.Scheme
	Predictor bpred.Predictor
	Timing    Timing
	Cache     cache.Config
	MemSystem MemSystemKind
	// BufferCap bounds the difference buffer (0 = unbounded). Theorem 7
	// says (2c-1)·W entries suffice for a backward difference.
	BufferCap int
	// Speculate issues past unresolved conditional branches using the
	// predictor. When false the issue unit stalls at branches (the only
	// mode in which the pure E-repair scheme is safe).
	Speculate bool
	// PreciseBudget is how many instructions single-step mode executes
	// after an E-repair before concluding the exception was wrong-path
	// noise and resuming full speed (paper: "until ... all the
	// instructions in the E-repair range of the checkpoint used for
	// repair have finished"). 0 picks a default.
	PreciseBudget int
	MaxCycles     int64
	// WatchdogCycles aborts the run if no instruction issues or
	// delivers for this many cycles (an undersized difference buffer
	// can deadlock the pipeline). 0 picks a default.
	WatchdogCycles int64
	// Trace, if non-nil, receives one line per notable machine event
	// (repairs, precise-mode transitions, exceptions). For debugging
	// and the trace-rendering experiments.
	Trace func(format string, args ...any)
	// RefTrace, if non-nil, drives the shadow reference model by
	// replaying this pre-recorded trace instead of running a live
	// interpreter. The trace must have been recorded from the same
	// *prog.Program value passed to New/Run (pointer identity); sweeps
	// that run one program under many configurations pay the reference
	// interpretation cost once. Results are bit-identical either way.
	RefTrace *refsim.Trace
	// Probe, if non-nil, is invoked at the pre-issue and post-writeback
	// pipeline points (see the Probe interface). Nil costs one pointer
	// test per event and changes nothing observable.
	Probe Probe
	// DisableCycleSkip forces the machine to grind through idle cycles
	// one at a time instead of advancing directly to the next cycle an
	// operation can complete, issue, or deliver on. Cycle counts, stats,
	// and results are identical either way; the knob exists for
	// debugging and for the equivalence tests that prove that claim.
	DisableCycleSkip bool
	// Rewindable records golden boundary coordinates for every true-path
	// issue so Rewind can restore any live checkpoint's architectural
	// state on demand (the time-travel debug surface, rewind.go). Off by
	// default: recording costs one small append per true-path
	// instruction and the records are useless outside debug sessions.
	Rewindable bool
}

// Result is the outcome of a machine run.
type Result struct {
	Regs       [isa.NumRegs]uint32
	Mem        *mem.Memory // backing memory after draining all speculative state
	Exceptions []isa.Exception
	Halted     bool
	Stats      stats.Run
	Scheme     core.Stats
	Cache      cache.Stats
	Diff       diff.Stats
	Regfile    regfile.Stats
	// PredictorAccuracy is the observed hit ratio over resolved
	// correct-path branches.
	PredictorAccuracy float64
	// ShadowHalted reports whether the shadow interpreter reached the
	// architectural end of the program (it does whenever alignment was
	// never permanently lost; Stats.Retired comes from it).
	ShadowHalted bool
}

// MatchRef compares the machine's architectural outcome against a
// reference interpreter result, returning a descriptive error on the
// first mismatch.
func (r *Result) MatchRef(ref *refsim.Result) error {
	if r.Halted != ref.Halted {
		return fmt.Errorf("halted: machine=%v ref=%v", r.Halted, ref.Halted)
	}
	for i := 1; i < isa.NumRegs; i++ {
		if r.Regs[i] != ref.Regs[i] {
			return fmt.Errorf("r%d: machine=%#x ref=%#x", i, r.Regs[i], ref.Regs[i])
		}
	}
	if d := r.Mem.Diff(ref.Mem); d != "" {
		return fmt.Errorf("memory: %s", d)
	}
	if len(r.Exceptions) != len(ref.Exceptions) {
		return fmt.Errorf("exception count: machine=%d ref=%d (machine=%v ref=%v)",
			len(r.Exceptions), len(ref.Exceptions), r.Exceptions, ref.Exceptions)
	}
	for i := range r.Exceptions {
		if r.Exceptions[i] != ref.Exceptions[i] {
			return fmt.Errorf("exception %d: machine=%v ref=%v", i, r.Exceptions[i], ref.Exceptions[i])
		}
	}
	return nil
}

// Watchdog abort sentinels, matchable with errors.Is. External drivers
// (the fault-injection runner) distinguish a run that stopped making
// progress from one that failed outright.
var (
	// ErrCycleLimit: the run exceeded Config.MaxCycles.
	ErrCycleLimit = errors.New("cycle limit")
	// ErrDeadlock: no instruction issued or delivered for
	// Config.WatchdogCycles cycles.
	ErrDeadlock = errors.New("deadlock")
)

type mode uint8

const (
	modeNormal mode = iota
	modePrecise
)

// Machine is a configured machine instance bound to one program run.
type Machine struct {
	cfg  Config
	prog *prog.Program

	scheme  core.Scheme
	regs    *regfile.File
	backing *mem.Memory
	dcache  *cache.Cache
	memsys  diff.MemSystem
	undone  *int // memsys's Stats().Undone counter, polled every cycle
	pred    *bpred.Tracked

	shadow  refsim.Oracle
	aligned bool

	window *ooo.Station
	lsq    *ooo.LSQ
	alu    *ooo.FUPool
	muldiv *ooo.FUPool
	branch *ooo.FUPool
	mport  *ooo.FUPool

	cycle   int64
	nextSeq uint64
	fetchPC int

	fetchHalted bool // HALT issued (possibly speculatively)
	fetchOOR    bool // fetch fell off the code image
	jumpStall   bool // unresolved indirect jump
	branchStall bool // non-speculative branch wait

	// crack holds the remaining micro-operations of a partially issued
	// multi-operation (vector) instruction. Fetch stays at the
	// instruction until every micro-op has issued; any fetch redirect
	// abandons the crack.
	crack struct {
		elems  []isa.Inst
		pos    int
		onTrue bool
	}

	// repairBusyUntil stalls the issue unit while the backward
	// difference buffer pops undo entries — one entry per cycle, the
	// serial shift-register behaviour that makes backward differences
	// expensive for frequent B-repairs (§4.1.2's argument for forward
	// differences). Forward-difference repairs discard in place and
	// cost nothing.
	repairBusyUntil int64
	lastUndone      int

	mode        mode
	preciseLeft int
	depthBuf    []int
	// Event-driven cycle skipping: activity records whether the current
	// step changed any future-visible machine or scheme state;
	// idleReason is the stall reason the issue stage charged this cycle.
	// A step with no activity proves every following cycle up to the
	// next event (FU completion, repair-stall expiry, stuck/watchdog
	// boundary) is an identical no-op except for that one stall-counter
	// increment, so step() advances m.cycle there directly.
	activity   bool
	idleReason stats.StallReason
	// Hot-path buffer reuse: opFree recycles in-flight operation
	// records (delivered or squashed ops return to the free list
	// instead of the garbage collector), and squashBuf backs the
	// OpInfo slice returned by SquashAfter.
	opFree        []*ooo.Op
	squashBuf     []core.OpInfo
	excLog        []isa.Exception
	done          bool
	fatal         error
	lastProgress  int64
	st            stats.Run
	preciseTraceC int // precise-mode completions since entry (diagnostics)

	// memOut records that result() handed m.backing to a caller-visible
	// Result; Reset must then build fresh backing memory instead of
	// recycling pages the caller may still read.
	memOut bool

	// recs are the golden boundary records behind Rewind (rewind.go),
	// ascending by seq; suppressIssue gates the issue stage off while
	// quiesce drains the pipeline.
	recs          []rewindRec
	suppressIssue bool
}

// normalize validates p and cfg and applies the configuration defaults
// shared by New and Reset.
func normalize(p *prog.Program, cfg Config) (Config, error) {
	if err := p.Validate(); err != nil {
		return cfg, err
	}
	if cfg.Scheme == nil {
		return cfg, errors.New("machine: no scheme configured")
	}
	if cfg.Timing.IssueWidth == 0 {
		cfg.Timing = DefaultTiming
	}
	if cfg.Cache.Sets == 0 {
		cfg.Cache = cache.DefaultConfig
	}
	if cfg.PreciseBudget <= 0 {
		cfg.PreciseBudget = 64
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 50_000_000
	}
	if cfg.WatchdogCycles <= 0 {
		cfg.WatchdogCycles = 100_000
	}
	if cfg.Speculate && cfg.Predictor == nil {
		return cfg, errors.New("machine: speculation requires a predictor")
	}
	if !cfg.Speculate {
		if _, ok := cfg.Scheme.(*core.SchemeE); !ok {
			return cfg, errors.New("machine: non-speculative mode supports only SchemeE (branch checkpoints need a known successor PC)")
		}
	}
	switch cfg.MemSystem {
	case MemBackward3a, MemBackward3b, MemForward:
	default:
		return cfg, fmt.Errorf("machine: unknown memory system %v", cfg.MemSystem)
	}
	if cfg.RefTrace != nil && cfg.RefTrace.Program() != p {
		return cfg, fmt.Errorf("machine: RefTrace was recorded from program %q, not this %q instance", cfg.RefTrace.Program().Name, p.Name)
	}
	return cfg, nil
}

// New validates the configuration and builds a machine for one run of p.
func New(p *prog.Program, cfg Config) (*Machine, error) {
	cfg, err := normalize(p, cfg)
	if err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, prog: p, scheme: cfg.Scheme}
	m.backing = p.NewMemory()
	c, err := cache.New(cfg.Cache, m.backing)
	if err != nil {
		return nil, err
	}
	m.dcache = c
	switch cfg.MemSystem {
	case MemBackward3a:
		m.memsys = diff.NewBackward(c, diff.Simple, cfg.BufferCap)
	case MemBackward3b:
		m.memsys = diff.NewBackward(c, diff.Sophisticated, cfg.BufferCap)
	case MemForward:
		m.memsys = diff.NewForward(c, cfg.BufferCap)
	}
	m.undone = m.memsys.UndoneCounter()
	caps := m.scheme.RegStackCaps()
	m.regs = regfile.NewStacks(caps...)
	m.depthBuf = make([]int, len(caps))
	if cfg.Predictor != nil {
		m.pred = bpred.NewTracked(cfg.Predictor)
	}
	t := cfg.Timing
	m.window = ooo.NewStation(t.Window)
	m.lsq = ooo.NewLSQ(t.LSQ)
	m.alu = ooo.NewFUPool("alu", t.ALUUnits, t.ALULat)
	m.muldiv = ooo.NewFUPool("muldiv", t.MulDivUnit, t.MulLat)
	m.branch = ooo.NewFUPool("branch", 1, t.BranchLat)
	m.mport = ooo.NewFUPool("mem", t.MemPorts, t.CacheHit)

	if cfg.RefTrace != nil {
		m.shadow = cfg.RefTrace.Replay()
	} else {
		m.shadow = refsim.NewShadow(p)
	}
	m.aligned = true
	m.fetchPC = p.Entry
	m.nextSeq = 1

	if cfg.Rewindable {
		// The entry boundary: seq 0 is the initial checkpoint's BornSeq.
		m.recs = append(m.recs, rewindRec{})
	}
	m.scheme.Attach(m.regs, m.memsys, m)
	m.scheme.Restart(m.fetchPC, m.nextSeq)
	m.lastProgress = 0
	return m, nil
}

// Reset rebuilds the machine in place for one run of p under cfg,
// producing a machine indistinguishable from New(p, cfg) while reusing
// the chassis — page tables, cache lines, register stacks, difference
// arenas, window/LSQ storage, and operation free lists — allocated by
// previous runs. Backing memory handed out through a Result is never
// recycled. On error the machine is left in an unusable state and must
// be discarded.
func (m *Machine) Reset(p *prog.Program, cfg Config) error {
	cfg, err := normalize(p, cfg)
	if err != nil {
		return err
	}
	m.cfg = cfg
	m.prog = p
	m.scheme = cfg.Scheme

	if m.backing == nil || m.memOut {
		m.backing = p.NewMemory()
		m.memOut = false
	} else {
		p.InitMemory(m.backing)
	}
	if err := m.dcache.Reset(cfg.Cache, m.backing); err != nil {
		return err
	}
	m.resetMemsys(cfg)
	caps := m.scheme.RegStackCaps()
	m.regs.Reset(caps...)
	if cap(m.depthBuf) >= len(caps) {
		m.depthBuf = m.depthBuf[:len(caps)]
		clear(m.depthBuf)
	} else {
		m.depthBuf = make([]int, len(caps))
	}
	m.pred = nil
	if cfg.Predictor != nil {
		m.pred = bpred.NewTracked(cfg.Predictor)
	}
	t := cfg.Timing
	m.window.Reset(t.Window)
	m.lsq.Reset(t.LSQ)
	m.alu = resetPool(m.alu, "alu", t.ALUUnits, t.ALULat)
	m.muldiv = resetPool(m.muldiv, "muldiv", t.MulDivUnit, t.MulLat)
	m.branch = resetPool(m.branch, "branch", 1, t.BranchLat)
	m.mport = resetPool(m.mport, "mem", t.MemPorts, t.CacheHit)

	if cfg.RefTrace != nil {
		m.shadow = cfg.RefTrace.Replay()
	} else {
		m.shadow = refsim.NewShadow(p)
	}
	m.aligned = true
	m.cycle = 0
	m.nextSeq = 1
	m.fetchPC = p.Entry
	m.fetchHalted = false
	m.fetchOOR = false
	m.jumpStall = false
	m.branchStall = false
	m.crack.elems = nil
	m.crack.pos = 0
	m.crack.onTrue = false
	m.repairBusyUntil = 0
	m.lastUndone = 0
	m.mode = modeNormal
	m.preciseLeft = 0
	m.activity = false
	m.idleReason = stats.StallNone
	// opFree and squashBuf are chassis scratch and carry over; excLog was
	// handed out through the previous Result, so it must not be truncated
	// in place.
	m.excLog = nil
	m.done = false
	m.fatal = nil
	m.st = stats.Run{}
	m.preciseTraceC = 0
	m.recs = m.recs[:0]
	m.suppressIssue = false
	if cfg.Rewindable {
		m.recs = append(m.recs, rewindRec{})
	}

	m.scheme.Attach(m.regs, m.memsys, m)
	m.scheme.Restart(m.fetchPC, m.nextSeq)
	m.lastProgress = 0
	return nil
}

// resetMemsys rebuilds the difference-buffer memory system over the
// (already reset) cache, reusing the existing buffer arena when the
// kind matches.
func (m *Machine) resetMemsys(cfg Config) {
	switch cfg.MemSystem {
	case MemBackward3a, MemBackward3b:
		algo := diff.Simple
		if cfg.MemSystem == MemBackward3b {
			algo = diff.Sophisticated
		}
		if b, ok := m.memsys.(*diff.Backward); ok {
			b.Reset(m.dcache, algo, cfg.BufferCap)
		} else {
			m.memsys = diff.NewBackward(m.dcache, algo, cfg.BufferCap)
		}
	case MemForward:
		if f, ok := m.memsys.(*diff.Forward); ok {
			f.Reset(m.dcache, cfg.BufferCap)
		} else {
			m.memsys = diff.NewForward(m.dcache, cfg.BufferCap)
		}
	}
	m.undone = m.memsys.UndoneCounter()
	m.lastUndone = 0
}

// resetPool reuses a functional-unit pool when the unit count matches,
// else builds a fresh one.
func resetPool(p *ooo.FUPool, name string, units, latency int) *ooo.FUPool {
	if p == nil || p.Units != units {
		return ooo.NewFUPool(name, units, latency)
	}
	p.Name = name
	p.Latency = latency
	p.Reset()
	return p
}

// Run executes the machine to completion.
func Run(p *prog.Program, cfg Config) (*Result, error) {
	m, err := New(p, cfg)
	if err != nil {
		return nil, err
	}
	return m.RunLoop()
}

// RunLoop drives cycles until the program completes, a fatal error
// occurs, or a cycle/watchdog limit trips.
func (m *Machine) RunLoop() (*Result, error) {
	for m.Step() {
	}
	return m.Finish()
}

// Step advances the machine one cycle, returning false once the run has
// completed or failed. External drivers (visualisation, tests) can
// interleave Step with state inspection; call Finish when done.
func (m *Machine) Step() bool {
	if m.done || m.fatal != nil {
		return false
	}
	if m.cycle >= m.cfg.MaxCycles {
		m.fatal = fmt.Errorf("machine: %w: exceeded %d cycles", ErrCycleLimit, m.cfg.MaxCycles)
		return false
	}
	if m.cycle-m.lastProgress > m.cfg.WatchdogCycles {
		m.fatal = fmt.Errorf("machine: %w: no progress for %d cycles (cycle %d, mode %d, window %d, %s)",
			ErrDeadlock, m.cfg.WatchdogCycles, m.cycle, m.mode, m.window.Len(), m.scheme.Name())
		return false
	}
	m.step()
	return !m.done && m.fatal == nil
}

// Cycle returns the current cycle number.
func (m *Machine) Cycle() int64 { return m.cycle }

// Done reports whether the program has completed.
func (m *Machine) Done() bool { return m.done }

// Scheme returns the attached repair scheme (for trace.Capture and
// inspection while stepping).
func (m *Machine) Scheme() core.Scheme { return m.scheme }

// InFlight returns the number of operations currently in the window.
func (m *Machine) InFlight() int { return m.window.Len() }

// Finish drains speculative state and returns the run result, plus the
// fatal error if the run did not complete cleanly.
func (m *Machine) Finish() (*Result, error) {
	res := m.result()
	if m.fatal != nil {
		return res, m.fatal
	}
	return res, nil
}

// step advances one cycle: writeback, execute, issue, scheme tick,
// drain check — then, if the cycle provably changed nothing, jumps
// directly to the next cycle an event can occur on.
func (m *Machine) step() {
	m.activity = false
	m.idleReason = stats.StallNone
	m.writeback()
	if m.done || m.fatal != nil {
		return
	}
	if n := int64(m.window.Len()); n > m.st.MaxWindow {
		m.st.MaxWindow = n
	}
	m.execute()
	if m.mode == modePrecise {
		m.issuePrecise()
	} else if !m.suppressIssue {
		m.issue()
	}
	if m.mode == modeNormal && m.fatal == nil && !m.done {
		// Every scheme state change reachable from Tick/Drain bumps a
		// Stats counter (checkpoint establish/retire, repairs, squashes),
		// so an unchanged snapshot proves the tick was a no-op — and a
		// no-op tick against unchanged machine state stays a no-op. The
		// snapshots are only needed while the cycle still looks idle.
		checkScheme := !m.activity
		var before core.Stats
		if checkScheme {
			before = m.scheme.Stats()
		}
		if _, err := m.scheme.Tick(); err != nil {
			m.fatal = err
			return
		}
		m.chargeRepairWork()
		m.drainCheck()
		m.chargeRepairWork()
		if checkScheme && m.scheme.Stats() != before {
			m.activity = true
		}
	}
	if !m.activity && !m.done && m.fatal == nil && !m.cfg.DisableCycleSkip {
		m.skipIdle()
	}
	m.cycle++
}

// skipIdle advances the machine over a provably idle stretch: the step
// that just ran touched no future-visible state, so every cycle before
// the next event would repeat it exactly, charging the same single
// stall reason. Jumping lands exactly on the earliest of: an executing
// operation's completion (which also covers functional-unit and memory
// port frees — in an idle cycle every busy time is some in-flight
// operation's DoneAt), the repair shift-register going idle, the
// stuck-pipeline escape threshold, the watchdog boundary, and the
// MaxCycles limit — so stuck repairs, deadlock aborts, and cycle caps
// fire on exactly the same cycle number as the one-cycle-at-a-time
// loop.
func (m *Machine) skipIdle() {
	next := m.cfg.MaxCycles
	if wd := m.lastProgress + m.cfg.WatchdogCycles + 1; wd < next {
		next = wd
	}
	if m.mode == modeNormal {
		if m.cycle < m.repairBusyUntil && m.repairBusyUntil < next {
			next = m.repairBusyUntil
		}
		if m.window.Len() > 0 {
			if st := m.lastProgress + stuckThreshold + 1; st < next {
				next = st
			}
		}
	}
	for _, o := range m.window.Ops() {
		if o.State == ooo.StateExecuting && o.DoneAt < next {
			next = o.DoneAt
		}
	}
	// Squashed operations' functional-unit reservations outlive them, so
	// a unit can free up on a cycle no in-flight operation completes on.
	for _, pool := range [...]*ooo.FUPool{m.alu, m.muldiv, m.branch, m.mport} {
		if e := pool.NextBusyExpiry(m.cycle); e > 0 && e < next {
			next = e
		}
	}
	if skipped := next - m.cycle - 1; skipped > 0 {
		if m.idleReason != stats.StallNone {
			m.st.StallCycles[m.idleReason] += skipped
		}
		m.cycle += skipped
	}
}

// result snapshots the architectural outcome. The memory system is
// drained so backing memory holds the final image.
func (m *Machine) result() *Result {
	m.memsys.Finish()
	m.memOut = true
	r := &Result{
		Regs:         m.regs.Snapshot(),
		Mem:          m.backing,
		Exceptions:   m.excLog,
		Halted:       m.done,
		Stats:        m.st,
		Scheme:       m.scheme.Stats(),
		Cache:        m.dcache.Stats(),
		Diff:         m.memsys.Stats(),
		Regfile:      m.regs.Stats(),
		ShadowHalted: m.shadow.Halted(),
	}
	r.Stats.Cycles = m.cycle
	r.Stats.Retired = int64(m.shadow.Retired())
	r.Stats.ERepairs = int64(r.Scheme.ERepairs)
	r.Stats.BRepairs = int64(r.Scheme.BRepairs)
	r.Stats.Checkpoints = int64(r.Scheme.Checkpoints)
	r.Stats.Exceptions = int64(len(m.excLog))
	if m.pred != nil {
		r.PredictorAccuracy = m.pred.Accuracy()
	}
	simInsts.Add(r.Stats.Retired)
	return r
}

// simInsts accumulates retired instructions across every machine run in
// the process — the serving layer's sim-insts/sec gauge reads it.
var simInsts atomic.Int64

// SimulatedInsts returns the total number of instructions retired by
// all machine runs since process start (monotonic; read twice and
// subtract for a rate).
func SimulatedInsts() int64 { return simInsts.Load() }

// trace emits a debug event line when tracing is enabled.
func (m *Machine) trace(format string, args ...any) {
	if m.cfg.Trace != nil {
		m.cfg.Trace("[cyc %d] "+format, append([]any{m.cycle}, args...)...)
	}
}

// --- core.Engine implementation ---

// SquashAfter implements core.Engine. The returned slice is scratch
// storage reused by the next call, per the core.Engine contract.
func (m *Machine) SquashAfter(seq uint64) []core.OpInfo {
	squashed := m.window.SquashAfter(seq)
	m.lsq.SquashAfter(seq)
	infos := m.squashBuf[:0]
	for _, o := range squashed {
		infos = append(infos, core.OpInfo{Seq: o.Seq, PC: o.PC, IsBranch: o.Inst.IsBranch(), IsStore: o.IsStore()})
	}
	m.squashBuf = infos
	// Squashed operations are gone from the window and LSQ (memory ops
	// sat in both, so the window list covers every squashed op exactly
	// once); recycle the records.
	for _, o := range squashed {
		m.freeOp(o)
	}
	m.st.WrongPath += int64(len(squashed))
	m.nextSeq = seq + 1
	// Boundary records above seq stay valid: wrong-path operations are
	// never recorded, so everything above seq in recs maps true-path
	// boundaries — and an E-repair re-executes exactly that path with
	// the same sequence numbering. A B-repair redirect resumes the true
	// path at seq+1, whose records were never created (issue was
	// unaligned), so re-recording keeps recs sorted.
	return infos
}

// allocOp takes an operation record from the free list, or allocates
// one. The record is zeroed.
func (m *Machine) allocOp() *ooo.Op {
	if n := len(m.opFree); n > 0 {
		op := m.opFree[n-1]
		m.opFree = m.opFree[:n-1]
		*op = ooo.Op{}
		return op
	}
	return new(ooo.Op)
}

// freeOp recycles an operation record that no pipeline structure
// references any more.
func (m *Machine) freeOp(op *ooo.Op) {
	m.opFree = append(m.opFree, op)
}

// RedirectFetch implements core.Engine.
func (m *Machine) RedirectFetch(pc int) {
	m.trace("redirect fetch -> pc=%d", pc)
	m.activity = true
	m.crack.elems = nil
	m.crack.pos = 0
	m.fetchPC = pc
	m.fetchHalted = false
	m.fetchOOR = false
	m.jumpStall = false
	m.branchStall = false
}

// EnterPreciseMode implements core.Engine.
func (m *Machine) EnterPreciseMode(pc int) {
	m.trace("E-repair: precise mode from pc=%d (shadow pc=%d retired=%d aligned=%v)", pc, m.shadow.PC(), m.shadow.Retired(), m.aligned)
	m.activity = true
	m.mode = modePrecise
	m.preciseLeft = m.cfg.PreciseBudget
	m.preciseTraceC = 0
	m.RedirectFetch(pc)
}

// --- writeback ---

// writeback delivers up to CDBWidth finished results, oldest first.
func (m *Machine) writeback() {
	delivered := 0
	for delivered < m.cfg.Timing.CDBWidth {
		var next *ooo.Op
		for _, o := range m.window.Ops() {
			if o.State == ooo.StateExecuting && o.DoneAt <= m.cycle {
				next = o
				break
			}
		}
		if next == nil {
			return
		}
		if p := m.cfg.Probe; p != nil {
			p.PostWriteback(m, Writeback{op: next})
		}
		m.deliver(next)
		m.freeOp(next) // removed from window and LSQ; recycle
		delivered++
		if m.done || m.fatal != nil {
			return
		}
	}
}

// deliver completes one operation: register/broadcast writes, scheme
// bookkeeping, branch resolution, and (in precise mode) direct
// exception handling.
func (m *Machine) deliver(op *ooo.Op) {
	m.activity = true
	op.State = ooo.StateDone
	m.window.Remove(op)
	if op.IsLoad() || op.IsStore() {
		m.lsq.Remove(op)
	}
	m.lastProgress = m.cycle

	if rd, hasDest := op.Inst.Dest(); hasDest {
		if m.mode == modePrecise {
			for i := range m.depthBuf {
				m.depthBuf[i] = 0
			}
		} else {
			m.scheme.Depths(op.Seq, m.depthBuf)
		}
		if op.WroteRd {
			m.regs.Deliver(m.depthBuf, rd, op.Result, op.Seq)
			m.window.Broadcast(op.Seq, op.Result)
		} else {
			// The operation faulted: architecturally it never executed,
			// so the reservation is withdrawn (rd keeps its old value in
			// every space) and waiting consumers are unblocked with the
			// current value. Anything that consumes it is younger than
			// the fault and will be squashed by the eventual E-repair;
			// until then its results are ordinary wrong-path noise.
			val := m.regs.Cancel(m.depthBuf, rd, op.Seq)
			m.window.Broadcast(op.Seq, val)
		}
	}

	if m.mode == modePrecise {
		m.deliverPrecise(op)
		return
	}

	m.scheme.OnDeliver(op.Seq, op.Exc != isa.ExcCodeNone)

	switch {
	case op.Inst.IsBranch():
		actualNext := op.PC + 1
		if op.Taken {
			actualNext = op.Target
		}
		defer m.chargeRepairWork()
		if !m.cfg.Speculate {
			// No prediction was made; resolution just unblocks fetch.
			m.scheme.OnBranchResolve(op.Seq, false, actualNext)
			m.branchStall = false
			m.fetchPC = actualNext
			if actualNext < 0 || actualNext >= len(m.prog.Code) {
				m.fetchOOR = true
			}
			return
		}
		mispredicted := actualNext != op.PredNext
		if mispredicted {
			m.trace("B-miss seq=%d pc=%d true=%v actualNext=%d", op.Seq, op.PC, op.OnTruePath, actualNext)
		}
		if op.OnTruePath {
			m.st.Branches++
			if mispredicted {
				m.st.Mispredicts++
			}
			if m.pred != nil {
				m.pred.Update(op.PC, op.Taken)
			}
		}
		if !m.scheme.OnBranchResolve(op.Seq, mispredicted, actualNext) {
			m.fatal = fmt.Errorf("machine: %s cannot repair branch miss at pc=%d", m.scheme.Name(), op.PC)
			return
		}
		if mispredicted && op.OnTruePath {
			// The repair redirected fetch to the correct path; the
			// shadow stepped this branch at issue and froze right after
			// it, so its PC is the actual target and alignment resumes.
			m.aligned = !m.shadow.Halted() && m.shadow.PC() == actualNext
		}
	case op.Inst.Op.IsIndirectJump():
		if op.Exc != isa.ExcCodeNone {
			// The jump faulted (misaligned target): there is no resolved
			// target. Fetch stays stalled until the scheme's E-repair
			// redirects it (RedirectFetch clears the stall).
			return
		}
		m.jumpStall = false
		m.fetchPC = op.Target
		if m.fetchPC < 0 || m.fetchPC >= len(m.prog.Code) {
			m.fetchOOR = true
		}
	}
}

// deliverPrecise completes one instruction of single-step mode,
// handling exceptions architecturally (the paper's "the exception
// handler is invoked in this case").
func (m *Machine) deliverPrecise(op *ooo.Op) {
	m.st.PreciseInsts++
	m.preciseTraceC++
	m.memsys.Release(op.Seq + 1)
	advanced := m.stepShadowPrecise(op)
	// In precise mode exceptions are handled architecturally right here,
	// so even an excepting completion is a valid golden boundary — but
	// only when the shadow advanced in lockstep (during re-execution of
	// instructions the shadow already consumed it stays put, and those
	// boundaries were already recorded at their original issue), and not
	// when a vector instruction faulted past its first micro-op: the
	// earlier elements' register writes are machine state the golden
	// boundary lacks.
	if advanced && m.cfg.Rewindable && (op.Exc == isa.ExcCodeNone || op.Elem == 0) {
		m.recordBoundary(op.Seq)
	}

	if op.Exc != isa.ExcCodeNone {
		// An excepting micro-op abandons the rest of its instruction;
		// a resume-kind handler re-executes the instruction from
		// element 0 (idempotent — the same values are rewritten).
		m.crack.elems = nil
		m.crack.pos = 0
		exc := isa.Exception{Code: op.Exc, PC: op.PC, Addr: op.ExcAddr, Info: op.TrapInfo}
		m.trace("precise exception %v handled (seq=%d)", exc, op.Seq)
		m.excLog = append(m.excLog, exc)
		switch sem.HandlerAction(op.Exc) {
		case sem.ActResume:
			m.backing.Map(op.ExcAddr&^(mem.PageSize-1), mem.PageSize)
			m.fetchPC = op.PC
		case sem.ActSkip:
			m.fetchPC = op.PC + 1
		case sem.ActContinue:
			m.fetchPC = op.PC + 1
		case sem.ActHalt:
			m.done = true
			return
		}
		m.exitPrecise()
		return
	}

	switch {
	case op.Inst.IsBranch():
		if op.Taken {
			m.fetchPC = op.Target
		} else {
			m.fetchPC = op.PC + 1
		}
	case op.Inst.Op.Class() == isa.ClassJump:
		// Direct and indirect alike: the executed target is authoritative
		// (a faulting indirect jump took the exception path above).
		m.fetchPC = op.Target
	case op.Halt:
		m.done = true
		return
	}
	if op.LastElem() {
		m.preciseLeft--
	}
	if m.preciseLeft <= 0 {
		m.exitPrecise()
	}
}

// stepShadowPrecise keeps the shadow interpreter in lockstep during
// single-step mode. Precise execution partly RE-executes instructions
// the shadow already consumed (everything between the repaired
// checkpoint and where the shadow froze), so a bare PC match is not
// enough to know whether the shadow should advance; the exception logs
// disambiguate. Both sides handle exceptions identically and in the
// same architectural order, so:
//
//   - a non-excepting completion at the shadow's PC advances the shadow
//     only when the logs are level (the shadow isn't paused on an
//     exception occurrence the machine has yet to reach);
//   - an excepting completion at the shadow's PC advances the shadow
//     only when the shadow has NOT yet logged this occurrence — its
//     step observes and handles the same exception, keeping the logs
//     level again.
func (m *Machine) stepShadowPrecise(op *ooo.Op) (advanced bool) {
	if m.shadow.Halted() || m.shadow.PC() != op.PC {
		return false
	}
	// Multi-operation instructions advance the shadow once, at their
	// final micro-op (the shadow consumes the whole instruction in one
	// step) — or at an excepting micro-op, where the shadow observes
	// and handles the same exception.
	if op.Exc == isa.ExcCodeNone && !op.LastElem() {
		return false
	}
	if m.shadow.ExcCount() == len(m.excLog) {
		m.shadow.Step()
		return true
	}
	return false
}

// exitPrecise resumes full-speed checkpointed execution.
func (m *Machine) exitPrecise() {
	m.trace("exit precise: fetchPC=%d shadowPC=%d budgetLeft=%d", m.fetchPC, m.shadow.PC(), m.preciseLeft)
	m.mode = modeNormal
	m.fetchHalted = false
	m.fetchOOR = m.fetchPC < 0 || m.fetchPC >= len(m.prog.Code)
	m.scheme.Restart(m.fetchPC, m.nextSeq)
	m.aligned = !m.shadow.Halted() && m.shadow.PC() == m.fetchPC
}

// --- execute ---

// execute moves ready operations onto functional units and performs
// memory accesses permitted by the load/store queue ordering rules.
func (m *Machine) execute() {
	for _, op := range m.window.Ops() {
		if op.State != ooo.StateWaiting {
			continue
		}
		if op.IsLoad() || op.IsStore() {
			m.executeMem(op)
			continue
		}
		if !op.Ready() {
			continue
		}
		pool, extra := m.poolFor(op)
		if pool == nil {
			continue
		}
		if m.cfg.Timing.ExtraLatency != nil {
			extra += m.cfg.Timing.ExtraLatency(op.Seq)
		}
		done, ok := pool.Acquire(m.cycle, extra)
		if !ok {
			continue
		}
		m.compute(op)
		op.State = ooo.StateExecuting
		op.DoneAt = done
		m.activity = true
	}
}

// poolFor selects the functional unit pool and extra latency for a
// non-memory operation.
func (m *Machine) poolFor(op *ooo.Op) (*ooo.FUPool, int) {
	switch op.Inst.Op.Class() {
	case isa.ClassMulDiv:
		extra := 0
		if op.Inst.Op == isa.OpDIV || op.Inst.Op == isa.OpREM {
			extra = m.cfg.Timing.DivLat - m.cfg.Timing.MulLat
		}
		return m.muldiv, extra
	case isa.ClassBranch:
		return m.branch, 0
	default:
		return m.alu, 0
	}
}

// compute evaluates a non-memory operation's architectural semantics.
func (m *Machine) compute(op *ooo.Op) {
	o := sem.EvalALU(op.Inst, op.AVal, op.BVal, op.PC)
	op.Result = o.Result
	op.Taken = o.Taken
	op.Target = o.Target
	op.TrapInfo = o.TrapInfo
	op.Halt = o.Halt
	op.Exc = o.Exc
	// Fault semantics: the instruction has no effect. Trap semantics:
	// it completes (result written) and then traps.
	op.WroteRd = o.WroteRd && o.Exc.Kind() != isa.ExcFault
}

// executeMem advances one memory operation: address generation, then
// the cache access once the LSQ ordering rules and a memory port allow.
func (m *Machine) executeMem(op *ooo.Op) {
	if !op.AddrReady {
		if !op.AReady {
			return
		}
		op.Addr = sem.EffAddr(op.Inst, op.AVal)
		op.AddrReady = true
		m.activity = true
	}
	if op.IsStore() && !op.BReady {
		return
	}
	if !m.lsq.MayAccess(op) {
		return
	}
	unit, ok := m.mport.AcquireUnit(m.cycle)
	if !ok {
		return
	}
	// Every path from here mutates the op, the memory system, or a
	// per-cycle stall counter.
	m.activity = true
	size := sem.AccessSize(op.Inst.Op)
	if code := m.memsys.CheckAccess(op.Addr, size); code != isa.ExcCodeNone {
		// The access faults: it never touches memory, and the fault is
		// reported at delivery.
		op.Exc = code
		op.ExcAddr = op.Addr
		op.Accessed = true
		op.State = ooo.StateExecuting
		op.DoneAt = m.cycle + int64(m.cfg.Timing.CacheHit)
		m.mport.SetBusy(unit, op.DoneAt)
		return
	}
	if op.IsLoad() {
		word, hit, _ := m.memsys.Load(op.Addr)
		op.Result = sem.LoadValue(op.Inst.Op, op.Addr, word)
		op.WroteRd = true
		lat := m.cfg.Timing.CacheMiss
		if hit {
			lat = m.cfg.Timing.CacheHit
		}
		op.Accessed = true
		op.State = ooo.StateExecuting
		op.DoneAt = m.cycle + int64(lat)
		m.mport.SetBusy(unit, op.DoneAt)
		return
	}
	// Store: out-of-order write into the current logical space, with
	// the difference buffer recording how to undo (backward) or when to
	// apply (forward).
	aligned, data, mask := sem.StoreBytes(op.Inst.Op, op.Addr, op.BVal)
	ok, hit, exc := m.memsys.Store(op.Seq, aligned, data, mask)
	if exc != isa.ExcCodeNone {
		op.Exc = exc
		op.ExcAddr = op.Addr
		op.Accessed = true
		op.State = ooo.StateExecuting
		op.DoneAt = m.cycle + int64(m.cfg.Timing.CacheHit)
		m.mport.SetBusy(unit, op.DoneAt)
		return
	}
	if !ok {
		// Difference buffer full of live entries: the store stalls.
		m.st.StallCycles[stats.StallStoreBuf]++
		m.mport.SetBusy(unit, m.cycle) // port not consumed
		return
	}
	lat := m.cfg.Timing.CacheMiss
	if hit {
		lat = m.cfg.Timing.CacheHit
	}
	op.Accessed = true
	op.State = ooo.StateExecuting
	op.DoneAt = m.cycle + int64(lat)
	m.mport.SetBusy(unit, op.DoneAt)
}

// chargeRepairWork converts difference-buffer undo entries popped since
// the last call into issue-stall cycles (one entry per cycle, as a
// serial shift register would take). Called after every scheme
// operation that can trigger a repair.
func (m *Machine) chargeRepairWork() {
	undone := *m.undone
	if d := undone - m.lastUndone; d > 0 {
		until := m.cycle + int64(d)
		if until > m.repairBusyUntil {
			m.repairBusyUntil = until
		}
		m.lastProgress = m.cycle // repair work is progress
		m.activity = true
	}
	m.lastUndone = undone
}

// --- issue ---

// issue runs the normal-mode issue stage: up to IssueWidth instructions
// along the predicted path.
func (m *Machine) issue() {
	issued := 0
	reason := stats.StallNone
	for issued < m.cfg.Timing.IssueWidth {
		if m.cycle < m.repairBusyUntil {
			reason = stats.StallRepair
			break
		}
		if m.fetchHalted || m.fetchOOR {
			reason = stats.StallFetchOut
			break
		}
		if m.jumpStall {
			reason = stats.StallJump
			break
		}
		if m.branchStall {
			reason = stats.StallBranch
			break
		}
		if m.fetchPC < 0 || m.fetchPC >= len(m.prog.Code) {
			m.fetchOOR = true
			m.activity = true // one-time flip; steady StallFetchOut after
			reason = stats.StallFetchOut
			break
		}
		in := m.prog.Code[m.fetchPC]
		elem := in
		if in.Op.IsVector() {
			if m.crack.elems == nil {
				m.crack.elems = sem.Expand(in)
				m.crack.pos = 0
				m.activity = true // crack initialised even if issue stalls
			}
			elem = m.crack.elems[m.crack.pos]
		}
		if ok, _ := m.scheme.CanIssue(elem, m.fetchPC); !ok {
			reason = stats.StallScheme
			break
		}
		if m.window.Full() {
			reason = stats.StallRS
			break
		}
		isMem := elem.Op.Class() == isa.ClassLoad || elem.Op.Class() == isa.ClassStore
		if isMem && m.lsq.Full() {
			reason = stats.StallLSQ
			break
		}
		if in.Op.IsVector() {
			m.issueVectorElem(in, elem)
		} else {
			m.issueOne(in)
		}
		issued++
	}
	if issued == 0 && reason != stats.StallNone {
		m.st.StallCycles[reason]++
		m.idleReason = reason
	} else if issued > 0 {
		m.activity = true
	}
}

// issueOne issues the instruction at fetchPC, stepping the shadow for
// oracle alignment, predicting branches, reserving the destination, and
// dispatching into the window (and LSQ for memory operations).
func (m *Machine) issueOne(in isa.Inst) {
	pc := m.fetchPC
	seq := m.nextSeq
	if p := m.cfg.Probe; p != nil {
		p.PreIssue(m, seq, pc, in)
	}
	m.nextSeq++
	m.lastProgress = m.cycle

	op := m.allocOp()
	op.Seq, op.PC, op.Inst, op.PredNext = seq, pc, in, -1
	m.readOperands(op)

	// Shadow step for oracle hints and true-path tracking.
	hint := bpred.OracleHint{}
	if m.aligned && !m.shadow.Halted() && m.shadow.PC() == pc {
		r := m.shadow.Step()
		op.OnTruePath = true
		switch {
		case r.Exc.Code != isa.ExcCodeNone:
			// The shadow handled the exception and froze in a state the
			// machine will converge to after its own E-repair; until
			// then the streams diverge.
			m.aligned = false
		case r.Branch:
			hint = bpred.OracleHint{Known: true, Taken: r.Taken}
		}
		// The shadow state after the step IS the golden architectural
		// state at this op's right boundary. That holds for excepting
		// attempts too: the shadow's step observed AND handled the
		// exception, which is exactly the state the machine converges
		// to once its own repair delivers this op precisely — so the
		// checkpoint the post-repair restart establishes at this seq
		// finds its record here.
		if m.cfg.Rewindable {
			m.recordBoundary(seq)
		}
	} else if m.aligned && !m.shadow.Halted() {
		// Defensive: alignment invariant broken; drop alignment rather
		// than corrupt oracle hints.
		m.aligned = false
	}

	nextPC := pc + 1
	switch in.Op.Class() {
	case isa.ClassBranch:
		if m.cfg.Speculate {
			taken := m.pred.Predict(pc, in, hint)
			op.PredTaken = taken
			if taken {
				op.PredNext = prog.BranchTarget(in, pc)
			} else {
				op.PredNext = pc + 1
			}
			nextPC = op.PredNext
			if op.OnTruePath && hint.Known && taken != hint.Taken {
				// Mispredicted on the true path: issue continues down
				// the wrong path until the branch resolves.
				m.aligned = false
			}
		} else {
			m.branchStall = true
			nextPC = -1
		}
	case isa.ClassJump:
		if in.Op.Format() == isa.FormatJ {
			nextPC = int(in.Imm)
		} else {
			m.jumpStall = true
			nextPC = -1
		}
	case isa.ClassSystem:
		if in.Op == isa.OpHALT {
			m.fetchHalted = true
			nextPC = -1
		}
	}

	if rd, ok := in.Dest(); ok {
		m.regs.Reserve(rd, seq)
	}
	m.window.Add(op)
	if in.Op.Class() == isa.ClassLoad || in.Op.Class() == isa.ClassStore {
		m.lsq.Add(op)
	}
	m.scheme.OnIssue(core.OpInfo{Seq: seq, PC: pc, IsBranch: in.IsBranch(), IsStore: in.IsMemWrite()}, nextPC)
	m.st.Issued++
	if nextPC >= 0 {
		m.fetchPC = nextPC
	}
}

// issueVectorElem issues one micro-operation of a vector instruction.
// The shadow steps once, at element 0 (the reference interpreter
// executes the whole instruction in one step); fetch advances only
// after the last element; the scheme sees one OpInfo per operation —
// the paper's incr(k) for an instruction of k operations — with the
// checkpoint boundary (nextPC) known only at the final one, so no
// checkpoint lands mid-instruction.
func (m *Machine) issueVectorElem(in isa.Inst, elem isa.Inst) {
	pc := m.fetchPC
	seq := m.nextSeq
	if p := m.cfg.Probe; p != nil {
		p.PreIssue(m, seq, pc, elem)
	}
	m.nextSeq++
	m.lastProgress = m.cycle

	if m.crack.pos == 0 {
		m.crack.onTrue = false
		if m.aligned && !m.shadow.Halted() && m.shadow.PC() == pc {
			r := m.shadow.Step()
			m.crack.onTrue = true
			if r.Exc.Code != isa.ExcCodeNone {
				m.aligned = false
			}
		} else if m.aligned && !m.shadow.Halted() {
			m.aligned = false
		}
	}

	op := m.allocOp()
	op.Seq, op.PC, op.Inst, op.PredNext = seq, pc, elem, -1
	op.OnTruePath = m.crack.onTrue
	op.Elem, op.ElemCount = m.crack.pos, len(m.crack.elems)
	m.readOperands(op)
	if rd, ok := elem.Dest(); ok {
		m.regs.Reserve(rd, seq)
	}
	m.window.Add(op)
	if elem.Op.Class() == isa.ClassLoad || elem.Op.Class() == isa.ClassStore {
		m.lsq.Add(op)
	}
	nextPC := -1
	last := m.crack.pos == len(m.crack.elems)-1
	if last {
		nextPC = pc + 1
		// The instruction boundary lies after the final micro-op; the
		// shadow consumed the whole instruction at element 0, and
		// m.aligned still true means that step did not except.
		if m.cfg.Rewindable && m.crack.onTrue && m.aligned {
			m.recordBoundary(seq)
		}
	}
	m.scheme.OnIssue(core.OpInfo{Seq: seq, PC: pc, IsStore: elem.IsMemWrite()}, nextPC)
	m.st.Issued++
	if last {
		m.crack.elems = nil
		m.crack.pos = 0
		m.fetchPC = pc + 1
	} else {
		m.crack.pos++
	}
}

// readOperands captures source values or producer tags from the
// current logical space.
func (m *Machine) readOperands(op *ooo.Op) {
	in := op.Inst
	if in.Op.ReadsRs1() {
		v, pending, tag := m.regs.Read(in.Rs1)
		op.AVal, op.AReady, op.ATag = v, !pending, tag
	} else {
		op.AReady = true
	}
	if in.Op.ReadsRs2() {
		v, pending, tag := m.regs.Read(in.Rs2)
		op.BVal, op.BReady, op.BTag = v, !pending, tag
	} else {
		op.BReady = true
	}
}

// issuePrecise runs single-step mode: one instruction at a time, each
// completing before the next issues, following actual (not predicted)
// control flow.
func (m *Machine) issuePrecise() {
	if m.window.Len() > 0 {
		m.st.StallCycles[stats.StallPrecise]++
		m.idleReason = stats.StallPrecise
		return
	}
	m.activity = true
	if m.fetchPC < 0 || m.fetchPC >= len(m.prog.Code) {
		// Running off the code on the true path: bad-instruction fault,
		// handler halts.
		m.excLog = append(m.excLog, isa.Exception{Code: isa.ExcCodeBadInst, PC: m.fetchPC})
		m.done = true
		return
	}
	pc := m.fetchPC
	in := m.prog.Code[pc]
	elem := in
	elemIdx, elemCount := 0, 1
	if in.Op.IsVector() {
		if m.crack.elems == nil {
			m.crack.elems = sem.Expand(in)
			m.crack.pos = 0
		}
		elem = m.crack.elems[m.crack.pos]
		elemIdx, elemCount = m.crack.pos, len(m.crack.elems)
	}
	seq := m.nextSeq
	if p := m.cfg.Probe; p != nil {
		p.PreIssue(m, seq, pc, elem)
	}
	m.nextSeq++
	m.lastProgress = m.cycle

	op := m.allocOp()
	op.Seq, op.PC, op.Inst, op.PredNext, op.OnTruePath = seq, pc, elem, -1, true
	op.Elem, op.ElemCount = elemIdx, elemCount
	m.readOperands(op)
	if rd, ok := elem.Dest(); ok {
		m.regs.Reserve(rd, seq)
	}
	m.window.Add(op)
	if elem.Op.Class() == isa.ClassLoad || elem.Op.Class() == isa.ClassStore {
		m.lsq.Add(op)
	}
	m.st.Issued++
	if in.Op.IsVector() {
		if op.LastElem() {
			m.crack.elems = nil
			m.crack.pos = 0
			m.fetchPC = pc + 1
		} else {
			m.crack.pos++
		}
	} else if !in.IsControl() && in.Op != isa.OpHALT {
		m.fetchPC = pc + 1
	}
	// Control instructions set fetchPC at delivery.
}

// stuckThreshold is how many progress-free cycles the machine waits
// before asking the scheme to fire a pending repair out of turn. The
// paper's E-repair trigger waits for the excepting checkpoint to shift
// to the oldest window position, which requires further checkpoint
// pushes; a clogged pipeline (issue stalled on a full window whose
// operations transitively depend on a faulted producer) can prevent
// those pushes forever. Repairing to the oldest checkpoint is always
// state-safe, so firing early merely discards more work.
const stuckThreshold = 1024

// drainCheck detects the end of the run (fetch exhausted, pipeline
// empty, no pending repair work) and fires stuck-pipeline repairs.
func (m *Machine) drainCheck() {
	if m.window.Len() > 0 && m.cycle-m.lastProgress > stuckThreshold {
		repaired, err := m.scheme.Drain()
		if err != nil {
			m.fatal = err
			return
		}
		if repaired {
			m.lastProgress = m.cycle
			return
		}
	}
	if !(m.fetchHalted || m.fetchOOR) || m.window.Len() > 0 {
		return
	}
	repaired, err := m.scheme.Drain()
	if err != nil {
		m.fatal = err
		return
	}
	if repaired {
		return // precise mode will take it from here
	}
	if m.fetchOOR {
		m.excLog = append(m.excLog, isa.Exception{Code: isa.ExcCodeBadInst, PC: m.fetchPC})
	}
	m.done = true
}
