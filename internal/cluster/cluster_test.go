package cluster_test

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster/clustertest"
	"repro/internal/service"
	"repro/internal/service/client"
)

// singleNode computes a spec's result on a plain, uncoordinated
// server. It MUST run before any Coordinator exists in the process:
// the coordinator installs the process-global remote-batch hook, and
// a "single-node" reference computed while that hook is live would be
// routed through the cluster it is meant to be compared against.
func singleNode(t *testing.T, specs ...service.Spec) []*service.Result {
	t.Helper()
	srv := service.MustNew(service.Config{Workers: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()
	out := make([]*service.Result, len(specs))
	for i, spec := range specs {
		key, canon, err := spec.Key()
		if err != nil {
			t.Fatalf("spec %d key: %v", i, err)
		}
		res, err := srv.ExecuteLocal(context.Background(), key, canon)
		if err != nil {
			t.Fatalf("spec %d local execute: %v", i, err)
		}
		out[i] = res
	}
	return out
}

func runOnCluster(t *testing.T, c *clustertest.Cluster, spec service.Spec) *service.Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	sr, err := client.New(c.CoordURL).Run(ctx, spec)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	if sr.Result == nil {
		t.Fatalf("cluster run: job %s finished without result: %s", sr.Job.State, sr.Job.Error)
	}
	return sr.Result
}

// assertSameBytes compares the fields the byte-identity guarantee
// covers: the rendered output table and the structured summaries.
// (ElapsedMS legitimately differs; Key/Spec/Kind are inputs.)
func assertSameBytes(t *testing.T, label string, local, clustered *service.Result) {
	t.Helper()
	if local.Output != clustered.Output {
		t.Fatalf("%s: cluster output differs from single-node.\n--- single-node ---\n%s\n--- cluster ---\n%s",
			label, local.Output, clustered.Output)
	}
	lc, _ := json.Marshal(local.Campaign)
	cc, _ := json.Marshal(clustered.Campaign)
	if string(lc) != string(cc) {
		t.Fatalf("%s: campaign summary differs: %s vs %s", label, lc, cc)
	}
	ls, _ := json.Marshal(local.Sim)
	cs, _ := json.Marshal(clustered.Sim)
	if string(ls) != string(cs) {
		t.Fatalf("%s: sim summary differs: %s vs %s", label, ls, cs)
	}
}

// TestClusterByteIdentity drives a sweep and a campaign through a
// 2-worker cluster and asserts the assembled outputs are byte-for-byte
// what a single node produces.
func TestClusterByteIdentity(t *testing.T) {
	sweep := service.Spec{Kind: "sweep", Experiment: "C5"}
	campaign := service.Spec{Kind: "campaign", Workload: "fib",
		Campaign: &service.CampaignSpec{Models: []string{"fu-detected"}, Stride: 8}}
	ref := singleNode(t, sweep, campaign)

	c, err := clustertest.Start(clustertest.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	assertSameBytes(t, "sweep", ref[0], runOnCluster(t, c, sweep))
	assertSameBytes(t, "campaign", ref[1], runOnCluster(t, c, campaign))

	counters := c.Coord.Dispatcher().Counters()
	if counters.Dispatched == 0 {
		t.Fatalf("cluster path never dispatched a sub-job: %+v", counters)
	}
}

// TestClusterKillWorkerMidCampaign is the failure-path acceptance
// test: a worker dies while a fanned-out campaign is in flight, and
// the merged outcome table must still be byte-identical to the
// single-node run — retries land shards on the survivor (or fall back
// to the coordinator) without changing a single byte.
func TestClusterKillWorkerMidCampaign(t *testing.T) {
	// All models at stride 2: ~650 injections, long enough that the
	// kill below lands while shards are genuinely in flight.
	campaign := service.Spec{Kind: "campaign", Workload: "fib",
		Campaign: &service.CampaignSpec{Stride: 2}}
	ref := singleNode(t, campaign)

	c, err := clustertest.Start(clustertest.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	var res *service.Result
	wg.Add(1)
	go func() {
		defer wg.Done()
		res = runOnCluster(t, c, campaign)
	}()

	// Let the fan-out get going, then kill a worker with shards in
	// flight. Whenever the kill lands — before, during, or after its
	// shards ran — the merge must produce identical bytes.
	time.Sleep(30 * time.Millisecond)
	c.KillWorker(1)
	wg.Wait()

	assertSameBytes(t, "campaign after worker death", ref[0], res)

	if got := c.Coord.Registry().Count(); got > 1 {
		// The kill may have landed after every shard completed, in
		// which case no dispatch error ever surfaced it — that is
		// legitimate. But if dispatch did observe the death, the
		// registry must have shrunk. Either way, a fresh dispatch to
		// the dead address must not wedge routing:
		hz, err := http.Get(c.Workers[1].URL + "/healthz")
		if err == nil {
			hz.Body.Close()
			t.Fatalf("killed worker still answering /healthz")
		}
	}
}

// TestClusterScalesOut sanity-checks AddWorker: a worker joining after
// startup lands on the ring and receives work.
func TestClusterScalesOut(t *testing.T) {
	sim := service.Spec{Kind: "sim", Workload: "fib"}
	ref := singleNode(t, sim)

	c, err := clustertest.Start(clustertest.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.AddWorker(service.Config{}); err != nil {
		t.Fatal(err)
	}
	if got := c.Coord.Registry().Count(); got != 2 {
		t.Fatalf("registry count = %d, want 2", got)
	}
	assertSameBytes(t, "sim", ref[0], runOnCluster(t, c, sim))
}
