package bpred

import "fmt"

// Desc is a serializable description of a freshly constructed
// predictor: the constructor name plus its parameters, so a sweep
// configuration can cross a process boundary (the cluster's remote
// batch sub-jobs) and be rebuilt bit-for-bit. Only construction
// parameters are captured; describe fresh instances only (a trained
// table would lose its counters), which is what sweeps construct.
type Desc struct {
	Kind     string  `json:"kind"`
	Size     int     `json:"size,omitempty"`      // bimodal/gshare table entries
	HistBits int     `json:"hist_bits,omitempty"` // gshare history length
	HitRatio float64 `json:"hit_ratio,omitempty"` // synthetic target accuracy
	Seed     int64   `json:"seed,omitempty"`      // synthetic coin seed
}

// Describe captures a predictor's constructor parameters. ok is false
// for predictor types without a registered description (notably the
// Tracked wrapper and custom test predictors); a remote batch
// containing one falls back to local execution.
func Describe(p Predictor) (Desc, bool) {
	switch v := p.(type) {
	case *static:
		if v.taken {
			return Desc{Kind: "taken"}, true
		}
		return Desc{Kind: "nottaken"}, true
	case btfn:
		return Desc{Kind: "btfn"}, true
	case *bimodal:
		return Desc{Kind: "bimodal", Size: len(v.counters)}, true
	case *gshare:
		return Desc{Kind: "gshare", Size: len(v.counters), HistBits: v.histBits}, true
	case *oracle:
		return Desc{Kind: "oracle"}, true
	case *synthetic:
		return Desc{Kind: "synthetic", HitRatio: v.hitRatio, Seed: v.seed}, true
	}
	return Desc{}, false
}

// NewFromDesc rebuilds a fresh predictor from its description.
func NewFromDesc(d Desc) (Predictor, error) {
	switch d.Kind {
	case "nottaken":
		return NewNotTaken(), nil
	case "taken":
		return NewTaken(), nil
	case "btfn":
		return NewBTFN(), nil
	case "bimodal":
		return NewBimodal(d.Size), nil
	case "gshare":
		return NewGShare(d.Size, d.HistBits), nil
	case "oracle":
		return NewOracle(), nil
	case "synthetic":
		return NewSynthetic(d.HitRatio, d.Seed), nil
	}
	return nil, fmt.Errorf("bpred: unknown predictor kind %q", d.Kind)
}
